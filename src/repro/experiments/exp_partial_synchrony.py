"""E9 — conclusion / reference [10]: partial synchrony suffices.

Two panels:

**GST panel.**  The rotating-coordinator protocol under the targeted
coordinator-blackout adversary, for varying Global Stabilization Times.
Expected shape: the protocol decides within ~f+1 rounds *after* GST for
every finite GST, never violates agreement, and with GST = ∞ it spins
forever — safety without liveness is exactly the FLP regime, and the
decision round tracks GST linearly.

**Detector panel.**  The same protocol gated by an eventually-strong
(◇S) failure detector with varying stabilization times: decisions land
shortly after the detector stops slandering live coordinators,
reproducing the Chandra-Toueg reading of the same boundary.
"""

from __future__ import annotations

import random

from repro.analysis.stats import mean
from repro.experiments.harness import ExperimentResult, experiment
from repro.synchrony import (
    EventuallyStrongDetector,
    DetectorGuidedProcess,
    RotatingCoordinatorProcess,
    always_deliver,
    coordinator_blackout,
    run_partial_sync,
)

__all__ = ["run"]


@experiment("E9", "Conclusion [10]: consensus under partial synchrony")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n, f = (5, 2)
    names = tuple(f"p{i}" for i in range(n))
    trials = 10 if quick else 50
    max_rounds = 40 if quick else 80
    gst_values = [2, 6, 10, max_rounds + 1]
    rng = random.Random(seed)
    rows = []

    def blackout_rule():
        return coordinator_blackout(lambda r: names[(r - 1) % n])

    for gst in gst_values:
        decided = agreed = 0
        decision_rounds: list[int] = []
        for _ in range(trials):
            processes = [
                RotatingCoordinatorProcess(name, names, f=f)
                for name in names
            ]
            inputs = {name: rng.randint(0, 1) for name in names}
            crash = {names[rng.randrange(n)]: rng.randint(2, 6)}
            result = run_partial_sync(
                processes,
                inputs,
                gst=gst,
                drop_rule=blackout_rule(),
                crash_rounds=crash,
                max_rounds=max_rounds,
            )
            if result.all_live_decided:
                decided += 1
                decision_rounds.extend(result.decision_rounds.values())
            if result.agreement_holds:
                agreed += 1
        rows.append(
            {
                "panel": "GST",
                "param": "inf" if gst > max_rounds else gst,
                "trials": trials,
                "all_decided": decided,
                "agreement": agreed,
                "mean_decision_round": (
                    mean(decision_rounds) if decision_rounds else 0.0
                ),
            }
        )

    detector_times = [1, 5, 9] if quick else [1, 5, 9, 15]
    for stabilization in detector_times:
        decided = agreed = 0
        decision_rounds = []
        for trial in range(trials):
            crash = {names[rng.randrange(n)]: rng.randint(2, 6)}
            detector = EventuallyStrongDetector(
                names,
                crash,
                stabilization_time=stabilization,
                seed=seed * 100 + trial,
                noise=0.5,
            )
            processes = [
                DetectorGuidedProcess(name, names, f=f, detector=detector)
                for name in names
            ]
            inputs = {name: rng.randint(0, 1) for name in names}
            result = run_partial_sync(
                processes,
                inputs,
                gst=1,  # network is synchronous; only suspicion hurts
                drop_rule=always_deliver,
                crash_rounds=crash,
                max_rounds=max_rounds,
            )
            if result.all_live_decided:
                decided += 1
                decision_rounds.extend(result.decision_rounds.values())
            if result.agreement_holds:
                agreed += 1
        rows.append(
            {
                "panel": "detector",
                "param": stabilization,
                "trials": trials,
                "all_decided": decided,
                "agreement": agreed,
                "mean_decision_round": (
                    mean(decision_rounds) if decision_rounds else 0.0
                ),
            }
        )

    return ExperimentResult(
        exp_id="E9",
        title="Conclusion [10]: consensus under partial synchrony",
        rows=tuple(rows),
        notes=(
            "expected: agreement == trials on EVERY row (quorum "
            "intersection is unconditional); all_decided == trials for "
            "every finite GST / stabilization time, with "
            "mean_decision_round tracking the parameter ≈ linearly; the "
            "GST=inf row decides nothing — that row IS the FLP regime",
        ),
        seed=seed,
        quick=quick,
    )
