"""Unit tests for the stats/table helpers."""

import pytest

from repro.analysis.stats import format_table, mean, median, quantile, stddev


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_single(self):
        assert mean([5]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_accepts_generators(self):
        assert mean(x for x in (2, 4)) == 3.0


class TestQuantiles:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 9

    def test_interpolation(self):
        assert quantile([0, 10], 0.25) == 2.5

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_single_value(self):
        assert quantile([7], 0.9) == 7


class TestStddev:
    def test_constant_sequence(self):
        assert stddev([4, 4, 4]) == 0.0

    def test_known_value(self):
        assert stddev([0, 2]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stddev([])


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_headers(self):
        rows = [
            {"name": "arbiter", "ok": True},
            {"name": "2pc", "ok": False},
        ]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert "arbiter" in lines[2]
        # Columns align: every line equally wide or shorter.
        assert lines[1].startswith("-")

    def test_explicit_header_order(self):
        rows = [{"a": 1, "b": 2}]
        rendered = format_table(rows, headers=["b", "a"])
        assert rendered.splitlines()[0].startswith("b")

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        rendered = format_table(rows, headers=["a", "b"])
        assert "3" in rendered

    def test_floats_formatted(self):
        rendered = format_table([{"x": 1.23456}])
        assert "1.235" in rendered
