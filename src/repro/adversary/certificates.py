"""Machine-checkable evidence objects for the paper's lemmas and theorem.

Every checker in :mod:`repro.adversary.lemmas` and the adversary in
:mod:`repro.adversary.flp` returns a *certificate*: a frozen record of
the witnessing schedules and configurations, carrying its own
``verify(protocol)`` method that replays the evidence through the
protocol semantics from scratch.  Tests and benchmarks re-verify
certificates independently of the machinery that produced them — the
reproduction's answer to "how do we know the adversary isn't cheating?".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.protocol import Protocol
from repro.core.valency import BivalenceWitness
from repro.core.values import ONE, ZERO

__all__ = [
    "CommutativityWitness",
    "Lemma2Certificate",
    "Lemma3Case",
    "Lemma3Certificate",
    "AdversaryMode",
    "StageRecord",
    "NonDecidingRunCertificate",
]


@dataclass(frozen=True)
class CommutativityWitness:
    """Lemma 1 / Figure 1: one concrete commuting diamond.

    From ``configuration``, the disjoint schedules ``sigma1`` and
    ``sigma2`` lead to ``corner1`` and ``corner2``; applying the *other*
    schedule to each corner closes the diamond at ``meet``.
    """

    configuration: Configuration
    sigma1: Schedule
    sigma2: Schedule
    corner1: Configuration
    corner2: Configuration
    meet: Configuration

    def verify(self, protocol: Protocol) -> bool:
        """Replay the diamond: disjointness + all four sides + equality."""
        if not self.sigma1.is_disjoint_from(self.sigma2):
            return False
        corner1 = protocol.apply_schedule(self.configuration, self.sigma1)
        corner2 = protocol.apply_schedule(self.configuration, self.sigma2)
        meet_via_1 = protocol.apply_schedule(corner1, self.sigma2)
        meet_via_2 = protocol.apply_schedule(corner2, self.sigma1)
        return (
            corner1 == self.corner1
            and corner2 == self.corner2
            and meet_via_1 == self.meet
            and meet_via_2 == self.meet
        )


@dataclass(frozen=True)
class Lemma2Certificate:
    """Lemma 2: a bivalent initial configuration, with the chain context.

    ``bivalent_initial`` is the found configuration; ``witness`` holds
    schedules reaching both decisions.  When the search also located an
    adjacent 0-valent/1-valent pair on the input hypercube (the objects
    the proof manipulates), they are recorded for the narrative.
    """

    bivalent_initial: Configuration
    witness: BivalenceWitness
    adjacent_zero_valent: Configuration | None = None
    adjacent_one_valent: Configuration | None = None
    differing_process: str | None = None

    def verify(self, protocol: Protocol) -> bool:
        """Check the configuration is initial and the witness replays."""
        if self.bivalent_initial.buffer != type(
            self.bivalent_initial.buffer
        ).empty():
            return False
        if any(
            state.decided
            for _, state in self.bivalent_initial.states()
        ):
            return False
        return self.witness.verify(protocol)


class Lemma3Case(enum.Enum):
    """Which part of Lemma 3's structure a witness instantiates."""

    #: ``e(C)`` itself is bivalent — the trivial (and most common) case.
    IMMEDIATE = "immediate"
    #: A nonempty avoiding schedule σ was needed: the bivalent member of
    #: e(𝒞) is ``e(σ(C))`` with σ ≠ ∅.
    DEFERRED = "deferred"


@dataclass(frozen=True)
class Lemma3Certificate:
    """Lemma 3: a bivalent configuration in ``e(𝒞)``.

    ``avoiding_schedule`` (σ) never applies ``event`` (e); the claimed
    bivalent configuration is ``e(σ(C))``, witnessed by ``witness``.
    Search-cost fields feed the A1 ablation.
    """

    configuration: Configuration
    event: Event
    avoiding_schedule: Schedule
    result: Configuration
    witness: BivalenceWitness
    case: Lemma3Case
    configurations_examined: int = 0
    search_depth: int = 0

    def verify(self, protocol: Protocol) -> bool:
        """Replay: σ avoids e, e applies after σ, result matches, and the
        bivalence witness checks out from the result."""
        if any(step == self.event for step in self.avoiding_schedule):
            return False
        staged = protocol.apply_schedule(
            self.configuration, self.avoiding_schedule
        )
        if not self.event.is_applicable(staged):
            return False
        result = protocol.apply_event(staged, self.event)
        if result != self.result or result != self.witness.configuration:
            return False
        return self.witness.verify(protocol)


class AdversaryMode(enum.Enum):
    """How the adversary defeated the protocol."""

    #: The Theorem-1 staged construction: every stage ends bivalent, no
    #: process ever crashes, fairness is maintained by the queue
    #: discipline.  The prefix extends forever.
    BIVALENCE_PRESERVING = "bivalence-preserving"
    #: The fault fallback: one process is silenced (the single allowed
    #: fault) at a point where no deciding run without it exists, and the
    #: others run fairly forever without deciding.
    FAULT = "fault"
    #: The protocol walked itself into a configuration whose valency is
    #: NONE (no decision reachable at all).  Only non-totally-correct
    #: protocols admit this; the adversary then simply runs everyone
    #: fairly — no fault needed.
    DEAD_END = "dead-end"


@dataclass(frozen=True)
class StageRecord:
    """One stage of the staged construction (for reports and ablation)."""

    index: int
    scheduled_process: str
    forced_event: Event
    schedule_length: int
    configurations_examined: int
    search_depth: int
    case: Lemma3Case


@dataclass(frozen=True)
class NonDecidingRunCertificate:
    """Theorem 1's deliverable: an admissible prefix with no decision.

    ``schedule`` applied to ``initial`` must produce a run in which *no*
    configuration has a decision value.  In FAULT mode, ``faulty_process``
    takes no step at or after ``fault_point`` (its index in the
    schedule); at most this one process is faulty, as the theorem allows.
    """

    initial: Configuration
    schedule: Schedule
    final: Configuration
    mode: AdversaryMode
    stages: tuple[StageRecord, ...] = ()
    faulty_process: str | None = None
    fault_point: int | None = None
    steps_per_process: dict[str, int] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return len(self.schedule)

    def verify(self, protocol: Protocol) -> bool:
        """Replay the run and check every claim."""
        current = self.initial
        for index, event in enumerate(self.schedule):
            if (
                self.mode is AdversaryMode.FAULT
                and self.fault_point is not None
                and index >= self.fault_point
                and event.process == self.faulty_process
            ):
                return False  # The "dead" process took a step.
            if not event.is_applicable(current):
                return False
            current = protocol.apply_event(current, event)
            if current.has_decision:
                return False  # Somebody decided: the adversary failed.
        if current != self.final:
            return False
        if ZERO in current.decision_values() or ONE in current.decision_values():
            return False  # pragma: no cover - implied by has_decision
        return True

    def summary(self) -> str:
        """One-line report row."""
        fault = (
            f", faulty={self.faulty_process} at step {self.fault_point}"
            if self.mode is AdversaryMode.FAULT
            else ""
        )
        return (
            f"{self.mode.value}: {len(self.schedule)} events, "
            f"{len(self.stages)} stages{fault}, no process ever decided"
        )
