"""Bench E9 — partial synchrony (GST + failure detectors).

Regenerates the E9 table and micro-benchmarks the rotating-coordinator
protocol riding out a coordinator blackout until GST.
"""

from repro.synchrony import (
    RotatingCoordinatorProcess,
    coordinator_blackout,
    run_partial_sync,
)

NAMES = tuple(f"p{i}" for i in range(5))


def test_e9_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E9")
    for row in result.rows:
        assert row["agreement"] == row["trials"]
    infinite = [
        row
        for row in result.rows
        if row["panel"] == "GST" and row["param"] == "inf"
    ]
    assert infinite and infinite[0]["all_decided"] == 0


def test_blackout_until_gst10(benchmark):
    rule = coordinator_blackout(lambda r: NAMES[(r - 1) % 5])
    inputs = dict(zip(NAMES, [1, 0, 1, 0, 1]))

    def run():
        processes = [
            RotatingCoordinatorProcess(n, NAMES, f=2) for n in NAMES
        ]
        return run_partial_sync(
            processes, inputs, gst=10, drop_rule=rule, max_rounds=20
        )

    result = benchmark(run)
    assert result.all_live_decided
    assert min(result.decision_rounds.values()) >= 10
