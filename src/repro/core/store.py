"""Flat int64 storage for the packed exploration engine.

The packed engine used to keep one Python tuple per node plus a dict
keyed by those tuples — ~560 bytes/node of object headers and hash
links for a 4-slot configuration whose information content is 32 bytes.
This module replaces that representation with three flat structures:

* :class:`PackedArena` — every packed configuration, row-major in one
  contiguous int64 buffer with a fixed stride (``PackedCodec.width``).
  Node ``i`` **is** rows ``[i*stride, (i+1)*stride)``; ids are implicit.
* :class:`PackedIndex` — the visited set, an open-addressed hash table
  of two parallel int64 arrays (stored hash, node id + 1) probing over
  the arena.  Keys are never copied: a probe compares the candidate
  tuple against the arena row in place.  Hashes come from Python's
  ``hash()`` of int tuples, which is a pure function of the values
  (``PYTHONHASHSEED`` only perturbs str/bytes hashing), so the table
  layout — and everything downstream — is process-independent.
* :class:`EdgeStore` — the successor lists, an append-only CSR: one
  ``(offset, count)`` per node into a flat buffer of ``(event_id,
  target)`` int64 pairs.  Expansion is all-or-nothing per node, so a
  node's pairs are written exactly once and contiguously; events are
  interned to small dense ids in a side table.

The arena and the edge-pair buffer are :class:`Int64Buffer` instances:
they start as in-RAM ``array('q')`` and migrate to an anonymous
temp-file-backed ``mmap`` once they outgrow a configurable RAM budget
(``mode="mmap"``), which is what lets multi-million-node explorations
run on commodity RAM.  Spilling changes *where* bytes live, never what
they are — fingerprints are byte-identical across ram/mmap/spilled
stores, which ``tests/core/test_store.py`` pins.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import Event

__all__ = [
    "DEFAULT_SPILL_BUDGET_MB",
    "EdgeStore",
    "GraphStore",
    "Int64Buffer",
    "PackedArena",
    "PackedIndex",
    "StoreConfig",
]

#: Default per-engine RAM budget before flat buffers spill to disk
#: (``mode="mmap"`` only; ``mode="ram"`` never spills).
DEFAULT_SPILL_BUDGET_MB = 512.0

#: 63-bit mask: stored hashes must fit a signed int64 slot.
_HASH_MASK = (1 << 63) - 1

#: Minimum mmap capacity (int64 slots) so tiny spills do not thrash.
_MIN_MMAP_SLOTS = 1 << 13


@dataclass(frozen=True)
class StoreConfig:
    """How a :class:`GraphStore` keeps its flat buffers.

    ``mode="ram"`` pins everything in process memory (the default, and
    the exact memory profile small runs had before).  ``mode="mmap"``
    spills the two big buffers — the configuration arena and the edge
    pairs — to unlinked temp-file-backed memory maps once their
    combined in-RAM footprint crosses :attr:`spill_budget_mb`; the
    kernel then pages the cold tail instead of the process holding it.
    """

    mode: str = "ram"
    spill_budget_mb: float = DEFAULT_SPILL_BUDGET_MB
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("ram", "mmap"):
            raise ValueError(
                f"store mode must be 'ram' or 'mmap', got {self.mode!r}"
            )
        if self.spill_budget_mb < 0:
            raise ValueError("spill_budget_mb must be >= 0")

    @classmethod
    def coerce(
        cls, value: "StoreConfig | str | None"
    ) -> "StoreConfig":
        """Accept a config, a bare mode string, or ``None`` (ram)."""
        if value is None:
            return cls()
        if isinstance(value, str):
            return cls(mode=value)
        return value


class Int64Buffer:
    """A growable int64 buffer that can migrate from RAM to a mmap.

    Starts as an ``array('q')``; once the in-RAM footprint exceeds
    *spill_threshold_bytes* the contents move to an anonymous (created
    then unlinked) temp file mapped with :mod:`mmap`, and all further
    growth happens on disk via ``ftruncate`` + remap.  A threshold of
    ``None`` disables spilling entirely.  Values are plain Python ints
    throughout; reads return tuples, so callers never see the backing.
    """

    __slots__ = (
        "_ram", "_mm", "_view", "_fd", "_len", "_cap",
        "_threshold", "_dir", "_on_spill",
    )

    def __init__(
        self,
        spill_threshold_bytes: int | None = None,
        spill_dir: str | None = None,
        on_spill: Callable[[int], None] | None = None,
    ):
        self._ram: array | None = array("q")
        self._mm: mmap.mmap | None = None
        self._view: memoryview | None = None
        self._fd: int | None = None
        self._len = 0  # used int64 slots
        self._cap = 0  # mmap capacity in int64 slots
        self._threshold = spill_threshold_bytes
        self._dir = spill_dir
        self._on_spill = on_spill

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._len

    @property
    def nbytes(self) -> int:
        """Bytes of live data (not capacity)."""
        return self._len * 8

    @property
    def ram_bytes(self) -> int:
        """Bytes currently held in process memory (0 once spilled)."""
        return 0 if self._ram is None else len(self._ram) * 8

    @property
    def spilled(self) -> bool:
        return self._mm is not None

    # -- growth ------------------------------------------------------------

    def extend(self, values: Iterable[int]) -> None:
        """Append *values* (any iterable of ints) at the end."""
        if self._ram is not None:
            self._ram.extend(values)
            self._len = len(self._ram)
            if (
                self._threshold is not None
                and self._len * 8 > self._threshold
            ):
                self.spill()
            return
        chunk = array("q", values)
        end = self._len + len(chunk)
        if end > self._cap:
            self._grow(end)
        assert self._view is not None
        self._view[self._len:end] = chunk
        self._len = end

    def spill(self) -> None:
        """Migrate to a temp-file-backed mmap now (idempotent)."""
        if self._mm is not None:
            return
        assert self._ram is not None
        slots = max(len(self._ram), _MIN_MMAP_SLOTS)
        fd, path = tempfile.mkstemp(
            prefix="flpkit-store-", suffix=".bin", dir=self._dir
        )
        # Unlink immediately: the mapping (and the open fd used for
        # ftruncate growth) keeps the blocks alive; process death —
        # clean or not — reclaims them without litter.
        os.unlink(path)
        os.ftruncate(fd, slots * 8)
        self._fd = fd
        self._mm = mmap.mmap(fd, slots * 8)
        self._cap = slots
        view = memoryview(self._mm).cast("q")
        if self._ram:
            view[: len(self._ram)] = self._ram
        self._view = view
        self._ram = None
        if self._on_spill is not None:
            self._on_spill(self._len * 8)

    def _grow(self, needed_slots: int) -> None:
        new_cap = max(self._cap * 2, needed_slots, _MIN_MMAP_SLOTS)
        assert self._fd is not None and self._mm is not None
        assert self._view is not None
        self._view.release()
        os.ftruncate(self._fd, new_cap * 8)
        self._mm.resize(new_cap * 8)
        self._view = memoryview(self._mm).cast("q")
        self._cap = new_cap

    # -- reads -------------------------------------------------------------

    def read(self, start: int, count: int) -> tuple[int, ...]:
        """``count`` values starting at slot ``start``, as a tuple."""
        if self._ram is not None:
            return tuple(self._ram[start:start + count])
        assert self._view is not None
        return tuple(self._view[start:start + count])

    def __getitem__(self, slot: int) -> int:
        if self._ram is not None:
            return self._ram[slot]
        assert self._view is not None
        return self._view[slot]

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The live contents as raw little-endian int64 bytes."""
        if self._ram is not None:
            return self._ram.tobytes()
        assert self._view is not None
        return bytes(self._view[: self._len])

    def load_bytes(self, data: bytes) -> None:
        """Replace the contents with *data* (from :meth:`to_bytes`).

        The spill policy re-applies: a restored buffer larger than the
        threshold migrates straight to disk.
        """
        if len(data) % 8:
            raise ValueError(
                f"int64 buffer payload of {len(data)} bytes is not a "
                "multiple of 8"
            )
        self.close()
        self._ram = array("q")
        self._ram.frombytes(data)
        self._len = len(self._ram)
        if self._threshold is not None and self._len * 8 > self._threshold:
            self.spill()

    def close(self) -> None:
        """Release the mmap and its temp file (idempotent)."""
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._ram = None
        self._len = 0
        self._cap = 0

    def __del__(self):  # pragma: no cover - GC-ordering dependent
        try:
            self.close()
        except Exception:
            pass


class PackedArena:
    """Packed configurations, row-major with a fixed stride."""

    __slots__ = ("stride", "_buffer", "_rows")

    def __init__(self, stride: int, buffer: Int64Buffer):
        if stride < 2:
            raise ValueError("packed stride is at least 2 (state+buffer)")
        self.stride = stride
        self._buffer = buffer
        self._rows = 0

    def __len__(self) -> int:
        return self._rows

    @property
    def buffer(self) -> Int64Buffer:
        return self._buffer

    def append(self, row: tuple[int, ...]) -> int:
        """Store *row*, returning its node id (dense, append order)."""
        self._buffer.extend(row)
        node = self._rows
        self._rows += 1
        return node

    def row(self, node: int) -> tuple[int, ...]:
        """The packed tuple stored for *node*."""
        return self._buffer.read(node * self.stride, self.stride)

    def rows_flat(self, nodes: Iterable[int]) -> array:
        """The rows of *nodes* concatenated into one flat ``array('q')``
        (shared-memory frontier staging)."""
        flat = array("q")
        for node in nodes:
            flat.extend(self._buffer.read(node * self.stride, self.stride))
        return flat

    def load(self, data: bytes) -> None:
        """Restore the arena from :meth:`Int64Buffer.to_bytes` output."""
        self._buffer.load_bytes(data)
        slots = len(self._buffer)
        if slots % self.stride:
            raise ValueError(
                f"arena payload of {slots} slots is not a multiple of "
                f"stride {self.stride}"
            )
        self._rows = slots // self.stride


class PackedIndex:
    """Open-addressed int64 hash table over a :class:`PackedArena`.

    Two parallel ``array('q')`` slots per bucket: the stored 63-bit
    hash and the node id + 1 (0 marks an empty bucket).  Linear
    probing, power-of-two capacity, resize at 2/3 load.  The arena owns
    the keys; lookups compare the probe tuple against the arena row
    only on a stored-hash match.
    """

    __slots__ = ("_arena", "_hashes", "_nodes", "_mask", "_size")

    _INITIAL = 1 << 10

    def __init__(self, arena: PackedArena):
        self._arena = arena
        self._hashes = array("q", bytes(8 * self._INITIAL))
        self._nodes = array("q", bytes(8 * self._INITIAL))
        self._mask = self._INITIAL - 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def hash_row(row: tuple[int, ...]) -> int:
        return hash(row) & _HASH_MASK

    def get(self, row: tuple[int, ...]) -> int | None:
        """The node id of *row*, or ``None``."""
        h = hash(row) & _HASH_MASK
        mask = self._mask
        nodes = self._nodes
        hashes = self._hashes
        arena_row = self._arena.row
        i = h & mask
        while True:
            slot = nodes[i]
            if slot == 0:
                return None
            if hashes[i] == h and arena_row(slot - 1) == row:
                return slot - 1
            i = (i + 1) & mask

    def insert_new(self, row: tuple[int, ...], node: int) -> None:
        """Record *row* -> *node*.  The caller guarantees absence."""
        if (self._size + 1) * 3 >= (self._mask + 1) * 2:
            self._resize()
        self._insert_hash(hash(row) & _HASH_MASK, node)
        self._size += 1

    def _insert_hash(self, h: int, node: int) -> None:
        mask = self._mask
        nodes = self._nodes
        i = h & mask
        while nodes[i] != 0:
            i = (i + 1) & mask
        nodes[i] = node + 1
        self._hashes[i] = h

    def _resize(self) -> None:
        old_hashes = self._hashes
        old_nodes = self._nodes
        capacity = (self._mask + 1) * 2
        self._hashes = array("q", bytes(8 * capacity))
        self._nodes = array("q", bytes(8 * capacity))
        self._mask = capacity - 1
        for h, slot in zip(old_hashes, old_nodes):
            if slot != 0:
                self._insert_hash(h, slot - 1)

    def rebuild(self) -> None:
        """Repopulate from the arena (checkpoint restore path)."""
        n = len(self._arena)
        capacity = self._INITIAL
        while capacity * 2 < n * 3:
            capacity *= 2
        self._hashes = array("q", bytes(8 * capacity))
        self._nodes = array("q", bytes(8 * capacity))
        self._mask = capacity - 1
        self._size = 0
        arena_row = self._arena.row
        for node in range(n):
            self._insert_hash(hash(arena_row(node)) & _HASH_MASK, node)
            self._size += 1


class EdgeStore:
    """Append-only CSR successor lists over interned event ids.

    Per node: an offset (-1 until expanded) and a pair count into the
    flat ``(event_id, target)`` buffer.  The offset/count side tables
    stay in RAM (16 bytes/node, constantly probed); the pair buffer —
    the bulk, typically ~8 pairs/node — rides an :class:`Int64Buffer`
    and spills with it.

    An optional *perm side table* rides along for symmetry-quotient
    graphs: one interned renaming id per edge pair, kept in a parallel
    ``Int64Buffer`` indexed by ``pair offset // 2``.  Tracking is
    all-or-nothing — it must be enabled before the first edge is
    recorded, so the parallel buffer is aligned with the pair buffer by
    construction and every edge has a renaming (identity included).
    """

    __slots__ = ("_flat", "_offsets", "_counts", "_perms")

    def __init__(self, flat: Int64Buffer, perms: Int64Buffer | None = None):
        self._flat = flat
        self._offsets = array("q")
        self._counts = array("q")
        self._perms = perms

    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def flat(self) -> Int64Buffer:
        return self._flat

    @property
    def total_pairs(self) -> int:
        return len(self._flat) // 2

    @property
    def tracking_perms(self) -> bool:
        return self._perms is not None

    def enable_perms(self, perms: Int64Buffer) -> None:
        """Attach the perm side table (before any edges exist)."""
        if self._perms is not None:
            return
        if len(self._flat):
            raise ValueError(
                "perm tracking must be enabled before edges are recorded"
            )
        self._perms = perms

    def add_node(self) -> None:
        self._offsets.append(-1)
        self._counts.append(0)

    def set_edges(
        self,
        node: int,
        flat_pairs: Iterable[int],
        perm_ids: Iterable[int] | None = None,
    ) -> None:
        """Record *node*'s complete edge list (exactly once)."""
        if self._offsets[node] != -1:
            raise ValueError(f"node {node} already has recorded edges")
        offset = len(self._flat)
        self._flat.extend(flat_pairs)
        self._offsets[node] = offset
        count = (len(self._flat) - offset) // 2
        self._counts[node] = count
        if self._perms is not None:
            if perm_ids is None:
                raise ValueError(
                    "perm tracking is on: every edge needs a renaming id"
                )
            self._perms.extend(perm_ids)
            if len(self._perms) != len(self._flat) // 2:
                raise ValueError(
                    f"node {node}: {count} edges but perm side table "
                    "is misaligned (one renaming id per edge required)"
                )

    def perm_ids(self, node: int) -> tuple[int, ...]:
        """*node*'s per-edge renaming ids (``()`` when unexpanded).

        Only meaningful with tracking on; edge ``k`` of the node pairs
        with id ``perm_ids(node)[k]``.
        """
        if self._perms is None:
            return ()
        offset = self._offsets[node]
        if offset < 0:
            return ()
        return self._perms.read(offset // 2, self._counts[node])

    def pairs(self, node: int) -> tuple[int, ...]:
        """*node*'s flat ``(event_id, target, ...)`` pairs (``()`` when
        unexpanded)."""
        offset = self._offsets[node]
        if offset < 0:
            return ()
        return self._flat.read(offset, self._counts[node] * 2)

    def pair_count(self, node: int) -> int:
        return self._counts[node]

    def snapshot(self) -> dict[str, bytes]:
        state = {
            "flat": self._flat.to_bytes(),
            "offsets": self._offsets.tobytes(),
            "counts": self._counts.tobytes(),
        }
        if self._perms is not None:
            state["perms"] = self._perms.to_bytes()
        return state

    def restore(self, state: dict[str, bytes]) -> None:
        self._flat.load_bytes(state["flat"])
        self._offsets = array("q")
        self._offsets.frombytes(state["offsets"])
        self._counts = array("q")
        self._counts.frombytes(state["counts"])
        if self._perms is not None and "perms" in state:
            self._perms.load_bytes(state["perms"])


class GraphStore:
    """The packed engine's node table, visited set, and edge lists.

    One facade over :class:`PackedArena` + :class:`PackedIndex` +
    :class:`EdgeStore`, plus the event-id interning table that keys CSR
    pairs back to rich :class:`~repro.core.events.Event` objects.  The
    spill budget (``mode="mmap"``) is split evenly between the arena
    and the edge-pair buffer — edges dominate at scale, but an even
    split keeps both bounded without tuning knobs.
    """

    def __init__(
        self,
        stride: int,
        config: StoreConfig | None = None,
        on_spill: Callable[[int], None] | None = None,
    ):
        self.config = config = StoreConfig.coerce(config)
        if config.mode == "mmap":
            threshold = int(config.spill_budget_mb * 1024 * 1024) // 2
        else:
            threshold = None
        self._threshold = threshold
        self._on_spill = on_spill
        self.arena = PackedArena(
            stride,
            Int64Buffer(threshold, config.spill_dir, on_spill),
        )
        self.index = PackedIndex(self.arena)
        self.edges = EdgeStore(
            Int64Buffer(threshold, config.spill_dir, on_spill)
        )
        self._events: list["Event"] = []
        self._event_ids: dict["Event", int] = {}
        # Renaming interning for the per-edge perm side table (symmetry
        # quotient only).  Ids are dense first-seen; they key memo and
        # storage slots only, never canonical forms, so first-seen
        # order is determinism-safe.
        self._perm_table: list[tuple[int, ...]] = []
        self._perm_ids: dict[tuple[int, ...], int] = {}

    def __len__(self) -> int:
        return len(self.arena)

    # -- nodes -------------------------------------------------------------

    def find(self, row: tuple[int, ...]) -> int | None:
        return self.index.get(row)

    def add(self, row: tuple[int, ...]) -> int:
        """Intern a *new* row (the caller has already probed)."""
        node = self.arena.append(row)
        self.index.insert_new(row, node)
        self.edges.add_node()
        return node

    def row(self, node: int) -> tuple[int, ...]:
        return self.arena.row(node)

    # -- events ------------------------------------------------------------

    def event_id(self, event: "Event") -> int:
        eid = self._event_ids.get(event)
        if eid is None:
            eid = len(self._events)
            self._event_ids[event] = eid
            self._events.append(event)
        return eid

    def event_at(self, eid: int) -> "Event":
        return self._events[eid]

    # -- renamings (symmetry quotient) -------------------------------------

    @property
    def tracking_perms(self) -> bool:
        return self.edges.tracking_perms

    def enable_perm_tracking(self) -> None:
        """Turn on the per-edge renaming side table.

        Must happen before any edges are recorded (the engine enables
        it right after the symmetry quotient is built, before the first
        expansion), so every edge slot has a renaming and the parallel
        buffer never desynchronizes.
        """
        self.edges.enable_perms(
            Int64Buffer(self._threshold, self.config.spill_dir,
                        self._on_spill)
        )

    def perm_id(self, perm: tuple[int, ...]) -> int:
        pid = self._perm_ids.get(perm)
        if pid is None:
            pid = len(self._perm_table)
            self._perm_ids[perm] = pid
            self._perm_table.append(perm)
        return pid

    def perm_at(self, pid: int) -> tuple[int, ...]:
        return self._perm_table[pid]

    def edge_perms(self, node: int) -> list[tuple[int, ...]]:
        """*node*'s per-edge renamings, aligned with :meth:`edge_list`."""
        table = self._perm_table
        return [table[pid] for pid in self.edges.perm_ids(node)]

    # -- edges -------------------------------------------------------------

    def set_edges(
        self,
        node: int,
        edges: Iterable[tuple["Event", int]],
        perms: Iterable[tuple[int, ...]] | None = None,
    ) -> None:
        """Record *node*'s ``(event, target)`` list, interning events.

        With perm tracking on, *perms* carries the renaming the
        quotient applied to each edge's raw successor, aligned with
        *edges*.
        """
        event_id = self.event_id
        flat: list[int] = []
        for event, target in edges:
            flat.append(event_id(event))
            flat.append(target)
        perm_ids = None
        if self.edges.tracking_perms:
            perm_id = self.perm_id
            perm_ids = [perm_id(perm) for perm in perms or ()]
        self.edges.set_edges(node, flat, perm_ids)

    def set_edges_flat(self, node: int, flat_pairs: list[int]) -> None:
        """Record *node*'s edges from pre-interned ``(event_id, target)``
        pairs — the batched kernel's append run, which skips the
        per-edge Event hashing of :meth:`set_edges`.  Not available with
        perm tracking (the symmetry quotient routes through the rich
        merge, which carries the per-edge renamings)."""
        if self.edges.tracking_perms:
            raise ValueError(
                "flat edge appends cannot carry per-edge renamings; "
                "use set_edges when perm tracking is on"
            )
        self.edges.set_edges(node, flat_pairs, None)

    def edge_list(self, node: int) -> list[tuple["Event", int]]:
        """*node*'s successors as ``[(Event, target), ...]``."""
        pairs = self.edges.pairs(node)
        events = self._events
        return [
            (events[pairs[i]], pairs[i + 1])
            for i in range(0, len(pairs), 2)
        ]

    def edge_targets(self, node: int) -> tuple[int, ...]:
        """*node*'s successor ids only (frontier walks, reverse CSR)."""
        pairs = self.edges.pairs(node)
        return pairs[1::2]

    def iter_edges(self) -> Iterator[tuple[int, "Event", int]]:
        events = self._events
        for node in range(len(self.arena)):
            pairs = self.edges.pairs(node)
            for i in range(0, len(pairs), 2):
                yield node, events[pairs[i]], pairs[i + 1]

    # -- observability / lifecycle -----------------------------------------

    @property
    def spilled(self) -> bool:
        return self.arena.buffer.spilled or self.edges.flat.spilled

    @property
    def nbytes(self) -> int:
        """Live data bytes across the two big buffers."""
        return self.arena.buffer.nbytes + self.edges.flat.nbytes

    @property
    def arena_bytes(self) -> int:
        return self.arena.buffer.nbytes

    @property
    def edge_bytes(self) -> int:
        return self.edges.flat.nbytes

    def close(self) -> None:
        self.arena.buffer.close()
        self.edges.flat.close()

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Picklable snapshot: arena bytes, CSR bytes, event table.

        The index is *not* stored — it is a pure function of the arena
        and is rebuilt on restore, which keeps the payload minimal and
        impossible to de-synchronize.
        """
        state: dict[str, object] = {
            "arena": self.arena.buffer.to_bytes(),
            "edges": self.edges.snapshot(),
            "events": list(self._events),
        }
        if self.edges.tracking_perms:
            state["perm_table"] = list(self._perm_table)
        return state

    def restore(self, state: dict[str, object]) -> None:
        if "perm_table" in state:
            # Enable tracking before edges load so the perm buffer
            # exists to receive the snapshot's side table.
            self.enable_perm_tracking()
            self._perm_table = list(state["perm_table"])
            self._perm_ids = {
                perm: pid for pid, perm in enumerate(self._perm_table)
            }
        self.arena.load(state["arena"])
        self.index.rebuild()
        self.edges.restore(state["edges"])
        self._events = list(state["events"])
        self._event_ids = {e: i for i, e in enumerate(self._events)}
