"""Run traces: human-readable renderings of schedules and runs.

The proof objects (schedules, certificates) are exact but opaque; this
module turns them into step-by-step narratives for examples, debugging,
and the documentation. A :class:`RunTrace` pairs each event with the
configuration it produced and annotates decisions as they appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.protocol import Protocol

__all__ = ["TraceStep", "RunTrace", "trace_run"]


@dataclass(frozen=True)
class TraceStep:
    """One step of a traced run."""

    index: int
    event: Event
    configuration: Configuration
    new_decisions: tuple[tuple[str, int], ...]

    def describe(self) -> str:
        delivery = (
            "null" if self.event.is_null_delivery else repr(self.event.value)
        )
        decided = (
            "  ** "
            + ", ".join(f"{name} decides {v}" for name, v in self.new_decisions)
            + " **"
            if self.new_decisions
            else ""
        )
        return (
            f"[{self.index:4d}] {self.event.process} receives {delivery}; "
            f"|buffer|={len(self.configuration.buffer)}{decided}"
        )


@dataclass(frozen=True)
class RunTrace:
    """A fully materialized run: initial configuration + annotated steps."""

    initial: Configuration
    steps: tuple[TraceStep, ...]

    @property
    def final(self) -> Configuration:
        return self.steps[-1].configuration if self.steps else self.initial

    @property
    def decisions(self) -> dict[str, int]:
        """Every decision made during the run, ``process -> value``."""
        made: dict[str, int] = {}
        for step in self.steps:
            made.update(dict(step.new_decisions))
        return made

    @property
    def first_decision_step(self) -> int | None:
        """Index of the first deciding step, or ``None``."""
        for step in self.steps:
            if step.new_decisions:
                return step.index
        return None

    def describe(self, limit: int | None = None) -> str:
        """Multi-line narrative; *limit* truncates long runs."""
        lines = [f"initial: {self.initial!r}"]
        shown = self.steps if limit is None else self.steps[:limit]
        lines.extend(step.describe() for step in shown)
        if limit is not None and len(self.steps) > limit:
            lines.append(f"... {len(self.steps) - limit} more steps")
        decisions = self.decisions
        if decisions:
            lines.append(f"decisions: {decisions}")
        else:
            lines.append("decisions: none — nobody ever decided")
        return "\n".join(lines)


def trace_run(
    protocol: Protocol,
    initial: Configuration,
    schedule: Schedule | Iterable[Event],
) -> RunTrace:
    """Apply *schedule* from *initial*, recording every step."""
    steps: list[TraceStep] = []
    current = initial
    decided_before = {
        name for name, state in initial.states() if state.decided
    }
    for index, event in enumerate(schedule):
        current = protocol.apply_event(current, event)
        decided_now = {
            name: state.output
            for name, state in current.states()
            if state.decided and name not in decided_before
        }
        decided_before |= set(decided_now)
        steps.append(
            TraceStep(
                index=index,
                event=event,
                configuration=current,
                new_decisions=tuple(sorted(decided_now.items())),
            )
        )
    return RunTrace(initial=initial, steps=tuple(steps))
