"""Benchmark of the Lemma-1 reducer and the symmetry quotient.

Answers three questions into ``BENCH_por.json``:

1. **Ratio** — how many fewer configurations does the ample-set
   reducer expand on Ben-Or/3 at a pinned depth horizon?  The depth
   horizon (``max_levels``) is what makes the comparison fair: both
   engines walk the same number of BFS levels from the same root, so
   the counts differ only by what the reducer pruned.  The acceptance
   bar for this PR is >= 3x; the CI gate is a softer >= 2x so a
   slightly different horizon cannot flake the build.
2. **Verdict identity** — the reduction's soundness contract.  The
   valency census of every benchmarked protocol is fingerprinted
   (SHA-256 over the sorted ``inputs:valency`` lines) under the full
   and the reduced engine; the fingerprints must be equal, and the
   run *fails* (exit 1) if they are not.  Divergence here means the
   reducer changed an answer, which no speedup excuses.
3. **Resume identity** — a reduced exploration checkpointed mid-run
   and restored into a fresh engine must finish fingerprint-identical
   (graph fingerprint: every packed node and edge, in id order) to an
   uninterrupted reduced run.

A symmetry section records the quotient's node counts on the voting
protocols for the same horizon-free censuses (the quotient is about
orbit collapsing, not depth), with the same verdict-identity check.

Two sections added with the partition-refinement canonicalizer:

4. **Symmetry scaling** — per-configuration canonicalization cost of
   the refine algorithm vs the brute n! oracle on the n=5 zoo members.
   The refine cost is read off a real ``--symmetry`` exploration's
   counters; the brute cost is *sampled* over a stride of distinct
   configurations from that same run, because a full brute exploration
   of benor/5 is exactly the wall (minutes on one core, projected in
   the artifact) this PR removes.  The gate is on benor/5: >= 50x per
   configuration in the artifact, a softer >= 25x under ``--ci`` so
   scheduler noise cannot flake the build.
5. **Composed identity** — ``--por --symmetry`` determinism: serial,
   parallel (4 workers) and checkpoint-resumed explorations of the
   same root must produce byte-identical graph fingerprints.

Run directly (``python benchmarks/bench_por.py``) to emit the
artifact; ``--ci`` uses a shallower horizon and still writes the
artifact (the workflow uploads it and the gate asserts inside this
process); ``--smoke`` runs the smallest instance and writes nothing.
"""

import hashlib
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.reduction import ReductionPolicy, SymmetryQuotient
from repro.core.valency import ValencyAnalyzer
from repro.experiments.zoo import symmetric_zoo
from repro.protocols import (
    BenOrProcess,
    ParityArbiterProcess,
    QuorumVoteProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)

from artifact import write_artifact

POR = ReductionPolicy(por=True)

#: Finite-zoo protocols whose full census is cheap enough to run twice.
CENSUS_PROTOCOLS = [
    ("wait-for-all/3", lambda: make_protocol(WaitForAllProcess, 3)),
    ("quorum-vote/3", lambda: make_protocol(QuorumVoteProcess, 3)),
    ("parity-arbiter/3", lambda: make_protocol(ParityArbiterProcess, 3)),
    ("2pc/3", lambda: make_protocol(TwoPhaseCommitProcess, 3)),
]

SYMMETRIC_PROTOCOLS = [
    ("wait-for-all/3", lambda: make_protocol(WaitForAllProcess, 3)),
    ("quorum-vote/3", lambda: make_protocol(QuorumVoteProcess, 3)),
]


def census_fingerprint(protocol, reduction=None) -> tuple[str, int]:
    """``(sha256 of the sorted census, nodes interned)``."""
    analyzer = ValencyAnalyzer(protocol, reduction=reduction)
    try:
        census = analyzer.classify_initials()
        digest = hashlib.sha256()
        for inputs, valency in sorted(census.items()):
            digest.update(f"{inputs}:{valency.name}\n".encode())
        return digest.hexdigest(), len(analyzer.graph)
    finally:
        analyzer.close()


def graph_fingerprint(graph: GlobalConfigurationGraph) -> str:
    return graph.fingerprint()


def collect_reduction_ratio(depth: int) -> dict:
    """Ben-Or/3 expansion counts at the pinned depth horizon."""
    row = {"protocol": "benor/3", "depth_horizon": depth}
    for label, reduction in (("full", None), ("por", POR)):
        protocol = make_protocol(BenOrProcess, 3)
        graph = GlobalConfigurationGraph(protocol, reduction=reduction)
        started = time.perf_counter()
        graph.explore(
            protocol.initial_configuration([0, 1, 1]),
            1_000_000,
            max_levels=depth,
        )
        row[f"{label}_s"] = round(time.perf_counter() - started, 4)
        row[f"{label}_expansions"] = len(graph)
        if label == "por":
            row["por_pruned"] = graph.stats.por_pruned
            row["replay_checks"] = graph.stats.replay_checks
            row["replay_violations"] = graph.stats.replay_violations
            row["ample_fallbacks"] = graph.stats.ample_fallbacks
    row["ratio"] = round(row["full_expansions"] / row["por_expansions"], 2)
    return row


def collect_verdict_identity() -> dict:
    """Full-vs-reduced census fingerprints across the finite zoo."""
    rows = {}
    for label, build in CENSUS_PROTOCOLS:
        full_print, full_nodes = census_fingerprint(build())
        por_print, por_nodes = census_fingerprint(build(), reduction=POR)
        rows[label] = {
            "census_sha256": full_print,
            "identical_verdicts": full_print == por_print,
            "full_nodes": full_nodes,
            "por_nodes": por_nodes,
        }
    return rows


def collect_symmetry() -> dict:
    """Quotient node counts and verdict identity on symmetric protocols."""
    rows = {}
    sym = ReductionPolicy(symmetry=True)
    both = ReductionPolicy(por=True, symmetry=True)
    for label, build in SYMMETRIC_PROTOCOLS:
        full_print, full_nodes = census_fingerprint(build())
        sym_print, sym_nodes = census_fingerprint(build(), reduction=sym)
        both_print, both_nodes = census_fingerprint(build(), reduction=both)
        rows[label] = {
            "identical_verdicts": full_print == sym_print == both_print,
            "full_nodes": full_nodes,
            "symmetry_nodes": sym_nodes,
            "por_plus_symmetry_nodes": both_nodes,
        }
    return rows


def collect_symmetry_scaling(sample: int) -> dict:
    """Refine-vs-brute canonicalization cost on the n=5 zoo members.

    For each instance: run a real ``--symmetry`` (refine) exploration
    to the scaling depth and read the per-miss cost off the quotient's
    own counters; then build a fresh brute-oracle quotient over the
    same codec and time it canonicalizing a deterministic stride of
    the distinct configurations the refine run discovered.  Sampling
    is what keeps the baseline honest *and* affordable: each distinct
    configuration costs the brute oracle its full n! = 120 renamings,
    so the projected full-exploration wall (also recorded) is exactly
    the per-configuration cost times the orbit count.
    """
    rows = {}
    instances = {
        inst.label: inst for inst in symmetric_zoo(quick=False)
    }
    sym = ReductionPolicy(symmetry=True)
    brute_policy = ReductionPolicy(
        symmetry=True, symmetry_algorithm="brute"
    )
    for label, depth in (("benor/5", 6), ("wait-for-all/5", 6)):
        protocol = instances[label].protocol
        root = protocol.initial_configuration([0, 1, 1, 0, 1])
        graph = GlobalConfigurationGraph(protocol, reduction=sym)
        started = time.perf_counter()
        graph.explore(root, 1_000_000, max_levels=depth)
        refine_wall = time.perf_counter() - started
        quotient = graph._quotient
        assert quotient is not None and graph.stats.sym_fallbacks == 0
        misses = quotient.canonical_misses
        refine_us = quotient.canonical_seconds * 1e6 / misses

        stride = max(1, len(graph) // sample)
        configs = [
            graph.packed_at(node)
            for node in range(0, len(graph), stride)
        ][:sample]
        brute, problem = SymmetryQuotient.build(
            protocol, graph.codec, brute_policy
        )
        assert brute is not None, problem
        for packed in configs:
            brute.canonicalize(packed)
        assert brute.canonical_misses == len(configs)
        brute_us = (
            brute.canonical_seconds * 1e6 / brute.canonical_misses
        )
        rows[label] = {
            "depth_horizon": depth,
            "quotient_nodes": len(graph),
            "canonical_misses": misses,
            "refine_wall_s": round(refine_wall, 3),
            "refine_us_per_config": round(refine_us, 1),
            "brute_sampled_configs": len(configs),
            "brute_us_per_config": round(brute_us, 1),
            "projected_brute_canonical_s": round(
                brute_us * misses / 1e6, 1
            ),
            "ratio": round(brute_us / refine_us, 1),
        }
    return rows


def collect_composed_identity() -> dict:
    """Serial/parallel/resumed determinism under ``--por --symmetry``."""
    both = ReductionPolicy(por=True, symmetry=True)
    protocol = make_protocol(QuorumVoteProcess, 3)
    root = protocol.initial_configuration([0, 1, 0])

    serial = GlobalConfigurationGraph(protocol, reduction=both)
    serial.explore(root)
    fingerprint = graph_fingerprint(serial)

    parallel = GlobalConfigurationGraph(
        protocol, workers=4, min_batch_per_worker=1, reduction=both
    )
    parallel.explore(root)

    partial = GlobalConfigurationGraph(protocol, reduction=both)
    partial.explore(root, max_configurations=40)
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "composed.ckpt")
        save_checkpoint(partial, path)
        resumed = load_checkpoint(path, protocol)
    resumed.explore(root)

    return {
        "protocol": "quorum-vote/3",
        "policy": "por+symmetry",
        "nodes": len(serial),
        "fingerprint": fingerprint,
        "parallel_identical": graph_fingerprint(parallel) == fingerprint,
        "resume_identical": graph_fingerprint(resumed) == fingerprint,
    }


def collect_resume_identity(depth: int, split: int) -> dict:
    """Checkpoint a reduced run at *split* levels, resume to *depth*."""
    protocol = make_protocol(BenOrProcess, 3)
    root_inputs = [0, 1, 1]
    straight = GlobalConfigurationGraph(protocol, reduction=POR)
    straight.explore(
        protocol.initial_configuration(root_inputs),
        1_000_000,
        max_levels=depth,
    )

    partial = GlobalConfigurationGraph(protocol, reduction=POR)
    partial.explore(
        partial.protocol.initial_configuration(root_inputs),
        1_000_000,
        max_levels=split,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "por.ckpt")
        save_checkpoint(partial, path)
        resumed = load_checkpoint(path, protocol)
    resumed.explore(
        resumed.protocol.initial_configuration(root_inputs),
        1_000_000,
        max_levels=depth,
    )
    return {
        "protocol": "benor/3",
        "split_level": split,
        "depth_horizon": depth,
        "nodes": len(straight),
        "fingerprint": graph_fingerprint(straight),
        "resume_identical": (
            graph_fingerprint(resumed) == graph_fingerprint(straight)
        ),
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    ci = "--ci" in argv

    if smoke:
        row = collect_reduction_ratio(depth=4)
        assert row["ratio"] >= 2.0, f"reduction ratio collapsed: {row}"
        assert row["replay_violations"] == 0, row
        print(f"smoke ok: {row}")
        return 0

    depth = 6 if ci else 9
    sections = {
        "reduction_ratio": collect_reduction_ratio(depth=depth),
        "verdict_identity": collect_verdict_identity(),
        "symmetry": collect_symmetry(),
        "symmetry_scaling": collect_symmetry_scaling(
            sample=60 if ci else 120
        ),
        "composed_identity": collect_composed_identity(),
        "resume_identity": collect_resume_identity(depth=depth, split=3),
    }
    path = write_artifact(sections, name="por")
    print(f"wrote {path}")

    ratio = sections["reduction_ratio"]["ratio"]
    print(
        f"benor/3 depth {depth}: "
        f"{sections['reduction_ratio']['full_expansions']} full vs "
        f"{sections['reduction_ratio']['por_expansions']} reduced "
        f"expansions ({ratio}x)"
    )
    failures = []
    # The CI gate is 2x (horizon-robust); the PR's acceptance bar of
    # 3x is what the committed artifact must show at the full depth.
    floor = 2.0 if ci else 3.0
    if ratio < floor:
        failures.append(f"reduction ratio {ratio} below {floor}x")
    if sections["reduction_ratio"]["replay_violations"]:
        failures.append("commutation replay reported violations")
    for label, row in sections["verdict_identity"].items():
        if not row["identical_verdicts"]:
            failures.append(f"{label}: POR changed the census")
    for label, row in sections["symmetry"].items():
        if not row["identical_verdicts"]:
            failures.append(f"{label}: quotient changed the census")
    # The canonicalization gate lives on benor/5 (the PR's acceptance
    # instance); wait-for-all/5 is recorded for the trend line only.
    # CI floor is 25x against scheduler noise; the committed artifact
    # must show the full 50x.
    scaling = sections["symmetry_scaling"]["benor/5"]
    sym_floor = 25.0 if ci else 50.0
    print(
        f"benor/5 depth {scaling['depth_horizon']}: refine "
        f"{scaling['refine_us_per_config']}us vs brute "
        f"{scaling['brute_us_per_config']}us per configuration "
        f"({scaling['ratio']}x, projected full brute canonicalization "
        f"{scaling['projected_brute_canonical_s']}s)"
    )
    if scaling["ratio"] < sym_floor:
        failures.append(
            f"benor/5 canonicalization speedup {scaling['ratio']} "
            f"below {sym_floor}x"
        )
    composed = sections["composed_identity"]
    if not composed["parallel_identical"]:
        failures.append("por+symmetry parallel run diverged from serial")
    if not composed["resume_identical"]:
        failures.append("por+symmetry resumed run diverged from serial")
    if not sections["resume_identity"]["resume_identical"]:
        failures.append("resumed reduced run diverged from straight run")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
