"""Property-based tests of the model's global invariants.

These run random walks over random zoo protocols and assert the
structural facts the proofs lean on:

* the output register is write-once along every run;
* in agreement-safe protocols no configuration ever carries two
  decision values;
* valency is monotone: a univalent configuration's successors share its
  valency, and a decided configuration's valency equals its decision;
* exploration is deterministic and closed (every edge target is a node);
* enabled events are exactly the applicable ones.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.valency import Valency, ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)

SAFE_FACTORIES = {
    "arbiter": lambda: make_protocol(ArbiterProcess, 3),
    "parity": lambda: make_protocol(ParityArbiterProcess, 3),
    "wfa": lambda: make_protocol(WaitForAllProcess, 3),
    "2pc": lambda: make_protocol(TwoPhaseCommitProcess, 3),
    "3pc": lambda: make_protocol(ThreePhaseCommitProcess, 3),
}
_PROTOCOLS = {}
_ANALYZERS = {}


def get_protocol(name):
    if name not in _PROTOCOLS:
        _PROTOCOLS[name] = SAFE_FACTORIES[name]()
    return _PROTOCOLS[name]


def get_analyzer(name):
    if name not in _ANALYZERS:
        _ANALYZERS[name] = ValencyAnalyzer(get_protocol(name))
    return _ANALYZERS[name]


def random_walk(protocol, rng, max_steps=15):
    """Yield (config, event, next_config) along a random run."""
    inputs = [rng.randint(0, 1) for _ in protocol.process_names]
    config = protocol.initial_configuration(inputs)
    for _ in range(rng.randint(1, max_steps)):
        events = protocol.enabled_events(config)
        event = rng.choice(events)
        successor = protocol.apply_event(config, event)
        yield config, event, successor
        config = successor


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(SAFE_FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_output_register_write_once_along_runs(name, seed):
    protocol = get_protocol(name)
    rng = random.Random(seed)
    for config, _event, successor in random_walk(protocol, rng):
        for process in protocol.process_names:
            before = config.state_of(process)
            after = successor.state_of(process)
            if before.decided:
                assert after.output == before.output
            assert after.input == before.input


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(SAFE_FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_safe_protocols_never_disagree_on_random_walks(name, seed):
    protocol = get_protocol(name)
    rng = random.Random(seed)
    for _config, _event, successor in random_walk(protocol, rng, 25):
        assert len(successor.decision_values()) <= 1


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(["arbiter", "parity", "wfa"]),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_valency_is_monotone_along_steps(name, seed):
    """Successors of a v-valent configuration are v-valent; successors
    of a bivalent one are never NONE-valent (for safe protocols some
    decision stays reachable)."""
    protocol = get_protocol(name)
    analyzer = get_analyzer(name)
    rng = random.Random(seed)
    for config, _event, successor in random_walk(protocol, rng, 10):
        before = analyzer.valency(config)
        after = analyzer.valency(successor)
        if before.is_univalent:
            assert after is before
        elif before is Valency.BIVALENT:
            assert after in (
                Valency.BIVALENT,
                Valency.ZERO_VALENT,
                Valency.ONE_VALENT,
            )


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(["arbiter", "parity"]),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_decided_configuration_valency_matches_decision(name, seed):
    protocol = get_protocol(name)
    analyzer = get_analyzer(name)
    rng = random.Random(seed)
    for _config, _event, successor in random_walk(protocol, rng, 20):
        decisions = successor.decision_values()
        if decisions:
            value = next(iter(decisions))
            assert analyzer.valency(successor).decided_value == value


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(sorted(SAFE_FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_enabled_events_are_exactly_the_applicable_ones(name, seed):
    protocol = get_protocol(name)
    rng = random.Random(seed)
    for config, _event, _successor in random_walk(protocol, rng, 8):
        enabled = set(protocol.enabled_events(config))
        for event in enabled:
            assert event.is_applicable(config)
        # Null deliveries for every process must be present.
        from repro.core.events import NULL, Event

        for process in protocol.process_names:
            assert Event(process, NULL) in enabled


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(["arbiter", "2pc"]),
    bits=st.integers(min_value=0, max_value=7),
)
def test_exploration_is_closed_and_deterministic(name, bits):
    from repro.core.exploration import explore

    protocol = get_protocol(name)
    vector = [(bits >> i) & 1 for i in range(3)]
    root = protocol.initial_configuration(vector)
    first = explore(protocol, root)
    second = explore(protocol, root)
    assert first.configurations == second.configurations
    node_count = len(first.configurations)
    for source, _event, target in first.iter_edges():
        assert 0 <= source < node_count
        assert 0 <= target < node_count


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(sorted(SAFE_FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_buffer_conservation(name, seed):
    """Each step removes at most one message (the delivery) and adds
    exactly the step's sends: |buffer'| = |buffer| - delivered + sent."""
    protocol = get_protocol(name)
    rng = random.Random(seed)
    for config, event, successor in random_walk(protocol, rng, 12):
        delivered = 0 if event.is_null_delivery else 1
        state = config.state_of(event.process)
        transition = protocol.process(event.process).apply(
            state, event.value
        )
        assert len(successor.buffer) == (
            len(config.buffer) - delivered + len(transition.sends)
        )
