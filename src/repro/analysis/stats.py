"""Small statistics and table-formatting helpers for the harness.

Kept dependency-free (no numpy) so the library core stays pure; the
benchmark layer may use numpy independently.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

__all__ = [
    "mean",
    "median",
    "quantile",
    "stddev",
    "format_table",
    "format_counters",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)


def median(values: Iterable[float]) -> float:
    """Median; raises on empty input."""
    return quantile(values, 0.5)


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation quantile, ``0 <= q <= 1``."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("quantile of empty sequence")
    if len(data) == 1:
        return data[0]
    position = q * (len(data) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return data[low]
    weight = position - low
    return data[low] * (1 - weight) + data[high] * weight


def stddev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for singletons."""
    data = list(values)
    if not data:
        raise ValueError("stddev of empty sequence")
    center = mean(data)
    return math.sqrt(sum((x - center) ** 2 for x in data) / len(data))


def format_table(
    rows: Sequence[Mapping[str, object]],
    headers: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned, plain-text table.

    Column order follows *headers* if given, else the key order of the
    first row.  Every experiment's printed output goes through here so
    EXPERIMENTS.md and the harness stay visually consistent.
    """
    if not rows:
        return "(no rows)"
    columns = list(headers) if headers else list(rows[0].keys())
    rendered = [
        [_cell(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header_line = "  ".join(
        column.ljust(width) for column, width in zip(columns, widths)
    )
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header_line, separator, *body])


def format_counters(
    counters: Mapping[str, object], title: str | None = None
) -> str:
    """Render an observability-counter mapping as aligned key/value lines.

    Used by the CLI ``--stats`` flag to surface the shared
    configuration-graph engine's counters
    (:class:`repro.core.exploration.GraphStats`) without each command
    hand-rolling its own layout.
    """
    if not counters:
        return "(no counters)"
    width = max(len(key) for key in counters)
    lines = [] if title is None else [title]
    lines.extend(
        f"  {key.ljust(width)}  {_cell(value)}"
        for key, value in counters.items()
    )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
