"""Tests for the FLP adversary (Theorem 1)."""

import pytest

from repro.adversary.certificates import AdversaryMode
from repro.adversary.flp import FLPAdversary
from repro.core.errors import AdversaryStuck
from repro.core.valency import Valency, ValencyAnalyzer
from repro.protocols import (
    AlwaysZeroProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)


class TestStagedMode:
    def test_parity_arbiter_sustains_all_stages(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=30)
        assert certificate.mode is AdversaryMode.BIVALENCE_PRESERVING
        assert len(certificate.stages) == 30
        assert certificate.faulty_process is None
        assert certificate.verify(parity_arbiter3)

    def test_prefix_grows_with_stages(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        short = adversary.build_run(stages=10)
        long = adversary.build_run(stages=40)
        assert long.length > short.length

    def test_every_stage_ends_bivalent(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=12)
        # Replay and check the invariant at each stage boundary.
        config = certificate.initial
        offset = 0
        for record in certificate.stages:
            for event in certificate.schedule[
                offset : offset + record.schedule_length
            ]:
                config = parity_arbiter3.apply_event(config, event)
            offset += record.schedule_length
            assert (
                parity_arbiter3_analyzer.valency(config)
                is Valency.BIVALENT
            )

    def test_fairness_every_process_steps(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=9)
        assert set(certificate.steps_per_process) == set(
            parity_arbiter3.process_names
        )
        # The stage queue rotates, so steps split roughly evenly.
        counts = certificate.steps_per_process
        assert max(counts.values()) <= 3 * min(counts.values()) + 3

    def test_stage_discipline_queue_rotates(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=6)
        scheduled = [r.scheduled_process for r in certificate.stages]
        names = list(parity_arbiter3.process_names)
        assert scheduled == [names[i % 3] for i in range(6)]


class TestFaultMode:
    @pytest.mark.parametrize(
        "factory, expected_faulty",
        [
            (lambda: make_protocol(WaitForAllProcess, 3), None),
            (lambda: make_protocol(TwoPhaseCommitProcess, 3), None),
            (lambda: make_protocol(ThreePhaseCommitProcess, 3), None),
        ],
    )
    def test_univalent_protocols_fall_to_fault_mode(
        self, factory, expected_faulty
    ):
        protocol = factory()
        adversary = FLPAdversary(protocol)
        certificate = adversary.build_run(stages=5)
        assert certificate.mode is AdversaryMode.FAULT
        assert certificate.faulty_process in protocol.process_names
        assert certificate.verify(protocol)

    def test_arbiter_fault_is_the_arbiter(self, arbiter3, arbiter3_analyzer):
        adversary = FLPAdversary(arbiter3, analyzer=arbiter3_analyzer)
        certificate = adversary.build_run(stages=10)
        assert certificate.mode is AdversaryMode.FAULT
        assert certificate.faulty_process == "p0"  # the arbiter
        assert len(certificate.stages) >= 1  # some staged progress first

    def test_faulty_process_silent_after_fault_point(
        self, arbiter3, arbiter3_analyzer
    ):
        adversary = FLPAdversary(arbiter3, analyzer=arbiter3_analyzer)
        certificate = adversary.build_run(stages=10)
        for index, event in enumerate(certificate.schedule):
            if index >= certificate.fault_point:
                assert event.process != certificate.faulty_process

    def test_fair_tail_length_configurable(self, two_pc3):
        adversary = FLPAdversary(two_pc3)
        certificate = adversary.build_run(stages=2, fair_tail_steps=14)
        assert certificate.length == 14  # boundary entry: tail only


class TestExplicitStart:
    def test_requires_bivalent_start(self, arbiter3, arbiter3_analyzer):
        adversary = FLPAdversary(arbiter3, analyzer=arbiter3_analyzer)
        univalent = arbiter3.initial_configuration([0, 0, 0])
        with pytest.raises(ValueError, match="bivalent"):
            adversary.build_run(stages=3, initial=univalent)

    def test_explicit_bivalent_start_used(self, arbiter3, arbiter3_analyzer):
        adversary = FLPAdversary(arbiter3, analyzer=arbiter3_analyzer)
        start = arbiter3.initial_configuration([1, 1, 0])
        certificate = adversary.build_run(stages=4, initial=start)
        assert certificate.initial == start


class StubbornProcess:
    """Module-local degenerate protocol: decides 1 iff its input is 1;
    with input 0 it does nothing, ever.  The all-zeros initial
    configuration is NONE-valent — no decision is reachable at all —
    which is the adversary's DEAD_END shortcut."""


def _stubborn_protocol():
    from typing import Hashable

    from repro.core.process import Process, ProcessState, Transition
    from repro.core.protocol import Protocol

    class Stubborn(Process):
        def initial_data(self, input_value: int) -> Hashable:
            return ()

        def step(self, state: ProcessState, message_value):
            if not state.decided and state.input == 1:
                return Transition(state.with_decision(1), ())
            return Transition(state, ())

    return Protocol([Stubborn("p0"), Stubborn("p1")])


class TestDeadEndMode:
    def test_none_valent_initial_triggers_dead_end(self):
        protocol = _stubborn_protocol()
        adversary = FLPAdversary(protocol)
        certificate = adversary.build_run(stages=5, fair_tail_steps=12)
        assert certificate.mode is AdversaryMode.DEAD_END
        assert certificate.faulty_process is None
        assert certificate.length == 12
        assert certificate.verify(protocol)

    def test_dead_end_initial_is_all_zeros(self):
        protocol = _stubborn_protocol()
        adversary = FLPAdversary(protocol)
        certificate = adversary.build_run(stages=2)
        assert protocol.input_vector(certificate.initial) == (0, 0)

    def test_dead_end_runs_everyone_fairly(self):
        protocol = _stubborn_protocol()
        certificate = FLPAdversary(protocol).build_run(
            stages=2, fair_tail_steps=10
        )
        assert set(certificate.steps_per_process) == {"p0", "p1"}


class TestStuck:
    def test_always_zero_makes_adversary_stuck(self):
        # AlwaysZero decides instantly from every configuration; no
        # bivalence, no boundary, nothing to stall.
        protocol = make_protocol(AlwaysZeroProcess, 2)
        adversary = FLPAdversary(protocol)
        with pytest.raises(AdversaryStuck, match="partially correct"):
            adversary.build_run(stages=3)


class TestCertificateVerification:
    def test_tampered_schedule_fails_verification(
        self, arbiter3, arbiter3_analyzer
    ):
        from dataclasses import replace

        adversary = FLPAdversary(arbiter3, analyzer=arbiter3_analyzer)
        certificate = adversary.build_run(stages=5)
        # Claim a different final configuration: replay must disagree.
        forged = replace(certificate, final=certificate.initial)
        assert not forged.verify(arbiter3)
        # Claim the fault started later than it did: the faulty process
        # "stepping" before certificate.fault_point is fine, but moving
        # fault_point to 0 makes its early steps violations.
        if certificate.fault_point and certificate.fault_point > 0:
            earlier = replace(certificate, fault_point=0)
            assert not earlier.verify(arbiter3)

    def test_summary_mentions_mode(self, arbiter3, arbiter3_analyzer):
        adversary = FLPAdversary(arbiter3, analyzer=arbiter3_analyzer)
        certificate = adversary.build_run(stages=3)
        assert certificate.mode.value in certificate.summary()

    def test_deterministic_across_calls(self, two_pc3):
        a = FLPAdversary(two_pc3).build_run(stages=4)
        b = FLPAdversary(two_pc3).build_run(stages=4)
        assert a.schedule == b.schedule
        assert a.final == b.final
