"""Unit tests for repro.core.values."""

import pytest

from repro.core.values import (
    DECISION_VALUES,
    ONE,
    UNDECIDED,
    ZERO,
    is_decision_value,
    is_input_value,
    opposite,
    validate_input_vector,
)


class TestConstants:
    def test_binary_values(self):
        assert ZERO == 0
        assert ONE == 1
        assert DECISION_VALUES == (0, 1)

    def test_undecided_is_falsy_marker(self):
        assert UNDECIDED is None


class TestPredicates:
    def test_decision_values_accepted(self):
        assert is_decision_value(0)
        assert is_decision_value(1)

    def test_undecided_is_not_a_decision(self):
        assert not is_decision_value(UNDECIDED)

    def test_garbage_is_not_a_decision(self):
        assert not is_decision_value(2)
        assert not is_decision_value("0")

    def test_input_values(self):
        assert is_input_value(0)
        assert is_input_value(1)
        assert not is_input_value(None)
        assert not is_input_value(-1)


class TestValidateInputVector:
    def test_valid_vector_returned_as_tuple(self):
        assert validate_input_vector([0, 1, 1]) == (0, 1, 1)

    def test_accepts_generators(self):
        assert validate_input_vector(i % 2 for i in range(4)) == (0, 1, 0, 1)

    def test_rejects_bad_entry_with_position(self):
        with pytest.raises(ValueError, match="x_2"):
            validate_input_vector([0, 1, 5])

    def test_rejects_none(self):
        with pytest.raises(ValueError):
            validate_input_vector([0, None])

    def test_empty_vector_is_fine_here(self):
        # N >= 2 is enforced at the Protocol level, not here.
        assert validate_input_vector([]) == ()


class TestOpposite:
    def test_involution(self):
        assert opposite(0) == 1
        assert opposite(1) == 0
        assert opposite(opposite(0)) == 0

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            opposite(2)
