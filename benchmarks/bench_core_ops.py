"""Micro-benchmarks of the core model operations.

Not tied to a paper table; these quantify the substrate the proof
machinery stands on — event application, exploration, and valency — so
regressions in the hot paths are visible.
"""

from repro.core.events import NULL, Event
from repro.core.exploration import explore
from repro.core.valency import ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    WaitForAllProcess,
    make_protocol,
)


def test_apply_event(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    config = protocol.initial_configuration([0, 1, 1])

    after = benchmark(protocol.apply_event, config, Event("p0", NULL))
    assert len(after.buffer) == 2


def test_apply_100_event_schedule(benchmark):
    protocol = make_protocol(ParityArbiterProcess, 3)
    from repro.adversary.flp import FLPAdversary

    certificate = FLPAdversary(protocol).build_run(stages=90)
    config = certificate.initial
    schedule = certificate.schedule[:100]
    assert len(schedule) == 100

    final = benchmark(protocol.apply_schedule, config, schedule)
    assert not final.has_decision


def test_explore_arbiter3(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    root = protocol.initial_configuration([0, 0, 1])

    graph = benchmark(explore, protocol, root)
    assert graph.complete


def test_explore_wait_for_all3(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    root = protocol.initial_configuration([0, 1, 1])

    graph = benchmark(explore, protocol, root)
    assert graph.complete


def test_valency_cold(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    root = protocol.initial_configuration([0, 0, 1])

    def classify():
        return ValencyAnalyzer(protocol).valency(root)

    valency = benchmark(classify)
    assert valency.value == "bivalent"


def test_valency_warm_cache(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    root = protocol.initial_configuration([0, 0, 1])
    analyzer.valency(root)

    valency = benchmark(analyzer.valency, root)
    assert valency.value == "bivalent"


def test_enabled_events(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    config = protocol.initial_configuration([0, 1, 1])
    for name in protocol.process_names:
        config = protocol.apply_event(config, Event(name, NULL))

    events = benchmark(protocol.enabled_events, config)
    assert len(events) >= 6
