"""Bench E8 — FloodSet on the synchronous executor.

Regenerates the E8 table and micro-benchmarks one N=9, f=4 execution
with adversarial mid-round crashes.
"""

import random

from repro.experiments.exp_synchronous import random_sync_crash_plan
from repro.protocols import FloodSetProcess
from repro.synchrony import run_rounds


def test_e8_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E8")
    for row in result.rows:
        assert row["agreement"] == row["trials"]
        assert row["exact_rounds"] == row["trials"]


def test_phase_king_n13_f3(benchmark):
    from repro.experiments.exp_synchronous import phase_king_trial

    names = tuple(f"p{i}" for i in range(13))
    inputs = {name: i % 2 for i, name in enumerate(names)}

    def run():
        return phase_king_trial(
            13, 3, byzantine={"p1", "p6", "p11"}, inputs=inputs, seed=9
        )

    result = benchmark(run)
    honest = [n for n in names if n not in ("p1", "p6", "p11")]
    assert len({result.decisions[name] for name in honest}) == 1


def test_floodset_n9_f4(benchmark):
    names = tuple(f"p{i}" for i in range(9))
    rng = random.Random(3)
    plan = random_sync_crash_plan(names, 4, 5, rng)
    inputs = {name: i % 2 for i, name in enumerate(names)}

    def run():
        processes = [FloodSetProcess(n, names, f=4) for n in names]
        return run_rounds(processes, inputs, plan, max_rounds=6)

    result = benchmark(run)
    assert result.agreement_holds
    assert result.all_live_decided
