"""Tests for the ``python -m repro`` CLI."""

import pytest

import repro.cli as cli
from repro.cli import main
from repro.core.resilience import ChaosConfig


class TestList:
    def test_lists_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "parity-arbiter" in out
        assert "description" in out


class TestCheck:
    def test_safe_protocol_exits_zero(self, capsys):
        assert main(["check", "arbiter"]) == 0
        out = capsys.readouterr().out
        assert "partially correct" in out
        assert "bivalent" in out

    def test_unsafe_protocol_exits_one(self, capsys):
        assert main(["check", "quorum-vote"]) == 1
        out = capsys.readouterr().out
        assert "NOT partially correct" in out

    def test_unanalyzable_uses_simulation_sweep(self, capsys):
        assert main(["check", "benor"]) == 0
        out = capsys.readouterr().out
        assert "simulation sweep" in out
        assert "agreement=True" in out


class TestAttack:
    def test_staged_attack(self, capsys):
        assert main(["attack", "parity-arbiter", "--stages", "6"]) == 0
        out = capsys.readouterr().out
        assert "bivalence-preserving" in out
        assert "verified by replay: True" in out

    def test_fault_attack(self, capsys):
        assert main(["attack", "2pc", "--stages", "3"]) == 0
        out = capsys.readouterr().out
        assert "fault" in out

    def test_trace_flag(self, capsys):
        assert (
            main(
                ["attack", "arbiter", "--stages", "3", "--trace", "4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "receives" in out

    def test_unanalyzable_refused(self, capsys):
        assert main(["attack", "benor"]) == 2
        err = capsys.readouterr().err
        assert "unbounded" in err

    def test_degenerate_protocol_reports_stuck(self, capsys):
        assert main(["attack", "always-zero"]) == 1
        err = capsys.readouterr().err
        assert "stuck" in err


class TestSimulate:
    def test_fault_free(self, capsys):
        assert main(["simulate", "wait-for-all", "--inputs", "101"]) == 0
        out = capsys.readouterr().out
        assert "decided" in out
        assert "agreement: holds" in out

    def test_crash_spec(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "wait-for-all",
                    "--inputs",
                    "111",
                    "--crash",
                    "p0@0",
                    "--max-steps",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "none" in out  # nobody decides

    def test_random_scheduler(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "arbiter",
                    "--scheduler",
                    "random",
                    "--seed",
                    "4",
                ]
            )
            == 0
        )

    def test_bad_inputs_length(self):
        with pytest.raises(SystemExit):
            main(["simulate", "arbiter", "--inputs", "10101"])


class TestMap:
    def test_map_summary(self, capsys):
        assert main(["map", "arbiter", "--inputs", "001"]) == 0
        out = capsys.readouterr().out
        assert "critical steps" in out

    def test_hypercube_flag(self, capsys):
        assert (
            main(["map", "arbiter", "--inputs", "001", "--hypercube"])
            == 0
        )
        out = capsys.readouterr().out
        assert "consecutive rows are adjacent" in out

    def test_dot_export(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert (
            main(
                ["map", "arbiter", "--inputs", "001", "--dot", str(target)]
            )
            == 0
        )
        assert target.read_text().startswith("digraph")


class TestStatsFlag:
    def test_check_stats(self, capsys):
        assert main(["check", "arbiter", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine counters:" in out
        assert "interned" in out
        assert "cache_hits" in out

    def test_stats_surface_cache_and_packed_counters(self, capsys):
        assert main(["check", "arbiter", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "transition_hits" in out
        assert "transition_misses" in out
        assert "packed_step_hits" in out
        assert "packed_step_misses" in out
        assert "workers" in out

    def test_map_stats(self, capsys):
        assert main(["map", "arbiter", "--inputs", "001", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine counters:" in out

    def test_attack_stats(self, capsys):
        assert (
            main(
                ["attack", "parity-arbiter", "--stages", "3", "--stats"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine counters:" in out
        assert "explore_time_s" in out


class TestWorkersFlag:
    def test_check_with_workers(self, capsys):
        assert main(["check", "arbiter", "--workers", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "partially correct" in out
        assert "workers" in out

    def test_map_with_workers_matches_serial(self, capsys):
        assert main(["map", "parity-arbiter", "--inputs", "001"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                [
                    "map",
                    "parity-arbiter",
                    "--inputs",
                    "001",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_attack_with_workers(self, capsys):
        assert (
            main(
                [
                    "attack",
                    "parity-arbiter",
                    "--stages",
                    "3",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "verified by replay: True" in out


class TestExperimentsPassthrough:
    def test_runs_single_experiment(self, capsys):
        assert main(["experiments", "E8"]) == 0
        out = capsys.readouterr().out
        assert "FloodSet" in out


class TestResilienceFlags:
    def test_checkpoint_then_resume(self, tmp_path, capsys):
        target = tmp_path / "check.ckpt"
        assert (
            main(
                [
                    "check",
                    "parity-arbiter",
                    "--checkpoint",
                    str(target),
                    "--checkpoint-every",
                    "0.001",
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert target.exists()
        assert (
            main(
                [
                    "check",
                    "parity-arbiter",
                    "--resume",
                    str(target),
                    "--stats",
                ]
            )
            == 0
        )
        resumed = capsys.readouterr().out
        # Same verdicts, and the stats prove the snapshot was loaded.
        assert "initial-configuration valencies:" in resumed
        for line in first.splitlines():
            if "valent" in line:
                assert line in resumed
        assert "resumed_nodes" in resumed

    def test_resume_with_wrong_protocol_is_one_friendly_line(
        self, tmp_path, capsys
    ):
        """A checkpoint from another protocol must produce a one-line
        error and exit 2, not a traceback."""
        target = tmp_path / "parity.ckpt"
        assert (
            main(
                [
                    "check",
                    "parity-arbiter",
                    "--checkpoint",
                    str(target),
                    "--checkpoint-every",
                    "0.001",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["check", "arbiter", "--resume", str(target)]) == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("cannot resume:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_stats_surface_resilience_counters(self, capsys):
        assert main(["check", "arbiter", "--stats"]) == 0
        out = capsys.readouterr().out
        for counter in (
            "worker_timeouts",
            "pool_rebuilds",
            "serial_fallbacks",
            "budget_stops",
            "checkpoints_written",
        ):
            assert counter in out

    def test_map_accepts_budget_flags(self, capsys):
        assert (
            main(
                [
                    "map",
                    "arbiter",
                    "--inputs",
                    "001",
                    "--max-seconds",
                    "3600",
                    "--max-memory-mb",
                    "100000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "critical steps" in out


class TestInterruptExit:
    def test_interrupt_exits_130_with_partial_summary(
        self, tmp_path, capsys, monkeypatch
    ):
        target = tmp_path / "interrupted.ckpt"
        real = cli._make_analyzer

        def chaotic(protocol, args):
            analyzer = real(protocol, args)
            analyzer.graph.chaos = ChaosConfig(interrupt_after_level=2)
            return analyzer

        monkeypatch.setattr(cli, "_make_analyzer", chaotic)
        code = main(
            [
                "check",
                "parity-arbiter",
                "--checkpoint",
                str(target),
                "--checkpoint-every",
                "0.001",
            ]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "configurations" in err
        assert f"--resume {target}" in err
        assert target.exists()

    def test_interrupt_without_checkpoint_still_reports(
        self, capsys, monkeypatch
    ):
        real = cli._make_analyzer

        def chaotic(protocol, args):
            analyzer = real(protocol, args)
            analyzer.graph.chaos = ChaosConfig(interrupt_after_level=1)
            return analyzer

        monkeypatch.setattr(cli, "_make_analyzer", chaotic)
        assert main(["map", "parity-arbiter", "--inputs", "001"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "no checkpoint configured" in err


class TestChaosCommand:
    def test_serial_suite_passes(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "parity-arbiter",
                    "--workers",
                    "1",
                    "--max-configurations",
                    "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "interrupt-resume" in out
        assert "byte-identical" in out

    def test_scenario_subset(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "parity-arbiter",
                    "--workers",
                    "1",
                    "--max-configurations",
                    "500",
                    "--scenarios",
                    "interrupt-resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "interrupt-resume" in out
        assert "worker-kill" not in out


class TestSurvive:
    def test_single_protocol_matrix(self, capsys):
        assert (
            main(
                [
                    "survive",
                    "wait-for-all",
                    "--fault-models",
                    "none",
                    "one-mid-crash",
                    "--max-steps",
                    "400",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fault model" in out
        assert "one-mid-crash" in out
        assert "all survivability expectations hold" in out

    def test_json_artifact(self, tmp_path, capsys):
        target = tmp_path / "matrix.json"
        assert (
            main(
                [
                    "survive",
                    "2pc",
                    "--fault-models",
                    "none",
                    "omission",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        import json

        payload = json.loads(target.read_text())
        cells = {
            (cell["protocol"], cell["model"]): cell
            for cell in payload["cells"]
        }
        assert cells[("2pc", "none")]["termination"] == "holds"
        assert cells[("2pc", "omission")]["termination"] == "stalled"
        assert cells[("2pc", "omission")]["flagged"]["omission"] > 0

    def test_theorem2_predictions_via_cli(self, capsys):
        assert (
            main(
                [
                    "survive",
                    "initially-dead",
                    "--fault-models",
                    "initially-dead-minority",
                    "one-mid-crash",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stalled" in out      # the mid-run crash row
        assert "witnesses:" in out


class TestReductionFlags:
    def test_check_with_por_agrees_and_surfaces_counters(self, capsys):
        assert main(["check", "wait-for-all"]) == 0
        baseline = capsys.readouterr().out
        assert main(["check", "wait-for-all", "--por", "--stats"]) == 0
        reduced = capsys.readouterr().out
        # Same verdict lines; the reduced run adds the counter block.
        assert baseline.splitlines()[0] in reduced
        assert "por_pruned" in reduced

    def test_check_with_symmetry_on_a_symmetric_protocol(self, capsys):
        assert main(
            ["check", "wait-for-all", "--symmetry", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "sym_canonical_hits" in out

    def test_symmetry_on_undeclared_protocol_is_one_friendly_line(
        self, capsys
    ):
        assert main(["check", "arbiter", "--symmetry"]) == 2
        err = capsys.readouterr().err
        assert "cannot reduce" in err
        assert "Traceback" not in err

    def test_attack_symmetry_on_undeclared_protocol_refused(self, capsys):
        # The quotient itself refuses the asymmetric automata; the
        # attack command no longer pre-refuses --symmetry, because
        # witnesses un-quotient into concrete replayable schedules.
        assert main(["attack", "parity-arbiter", "--symmetry"]) == 2
        err = capsys.readouterr().err
        assert "cannot reduce" in err
        assert "Traceback" not in err

    def test_attack_with_por_still_verifies(self, capsys):
        assert (
            main(["attack", "parity-arbiter", "--stages", "3", "--por"])
            == 0
        )
        out = capsys.readouterr().out
        assert "verified by replay: True" in out

    def test_map_with_por_shrinks_but_classifies_the_same(self, capsys):
        import re

        def run(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            match = re.search(r"(\d+) configurations \((.*?)\)", out)
            count, classes = match.groups()
            # "0-valent=80" → the class names, sizes stripped: the
            # reduced map covers fewer nodes but the same verdict mix.
            return int(count), re.sub(r"=\d+", "", classes)

        full_count, full_classes = run(["map", "wait-for-all"])
        por_count, por_classes = run(["map", "wait-for-all", "--por"])
        assert por_classes == full_classes
        assert por_count < full_count

    def test_survive_notes_reduction_does_not_apply(self, capsys):
        assert (
            main(
                [
                    "survive",
                    "wait-for-all",
                    "--fault-models",
                    "none",
                    "--por",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "runs unreduced" in out
