"""The survivability matrix: protocol zoo × fault models.

The paper makes *predictions*, not just an impossibility claim:

* Theorem 2's protocol reaches consensus as long as a *majority* of the
  processes are alive from the start and "no process dies during the
  execution of the protocol" — so it must survive initially-dead
  minorities and it must stall under a single mid-run crash (the
  crashed process's stage-1 listeners wait for its stage-2 broadcast
  forever);
* Theorem 1 says every safe protocol has *some* admissible single-fault
  run that never decides — termination cells are therefore
  *existential*: one stalled run under the model flags the cell;
* commit protocols (2PC) famously widen their blocking window under
  message omission: lose the votes or the outcome and the cohort hangs.

:func:`survivability_matrix` sweeps registered protocols against
families of :class:`~repro.faults.plan.FaultPlan` (one family per named
*fault model*), runs each (inputs × scheduler) combination under a
:class:`~repro.schedulers.faulty.FaultyScheduler`, audits every run
against Section 2 via :func:`~repro.faults.audit.audit_run`, and folds
the outcomes into one :class:`SurvivabilityCell` per (protocol, model)
pair: agreement / validity / termination verdicts with witnesses, plus
the admissibility census.  :func:`check_expectations` pins the paper's
predictions so the sweep doubles as a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import registry
from repro.core.simulation import StopCondition, simulate
from repro.faults.audit import audit_run
from repro.faults.plan import (
    Crash,
    CrashRecovery,
    Duplication,
    FaultPlan,
    Omission,
    Partition,
)
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.round_robin import RoundRobinScheduler

__all__ = [
    "FAULT_MODELS",
    "SurvivabilityCell",
    "plans_for",
    "survivability_matrix",
    "check_expectations",
]

#: The named fault-model families the matrix sweeps, in display order.
FAULT_MODELS: tuple[str, ...] = (
    "none",
    "initially-dead-minority",
    "one-mid-crash",
    "crash-recovery",
    "omission",
    "duplication",
    "partition-heal",
    "partition-forever",
)


def plans_for(model: str, names: tuple[str, ...]) -> list[FaultPlan]:
    """The concrete plans a named fault model yields for *names*.

    Deterministic and small by design: a handful of representative
    plans per family, not the full combinatorial space.
    """
    n = len(names)
    if model == "none":
        return [FaultPlan.none()]
    if model == "initially-dead-minority":
        minority = (n - 1) // 2
        if minority == 0:
            return []
        # Rotated contiguous victim sets: every process is dead in some
        # plan, without enumerating all C(n, minority) subsets.
        return [
            FaultPlan.initially_dead(
                names[start:] + names[: minority - (n - start)]
                if start + minority > n
                else names[start : start + minority]
            )
            for start in range(n)
        ]
    if model == "one-mid-crash":
        # One process dies after it has begun participating.  Crash
        # steps cover "just after its first step", "after one full
        # round", and "after two rounds" under round-robin pacing.
        return [
            FaultPlan([Crash(name, at_step)])
            for name in names
            for at_step in (1, n + 1, 2 * n + 1)
        ]
    if model == "crash-recovery":
        return [
            FaultPlan([CrashRecovery(name, 2, 2 + 2 * n)]) for name in names
        ]
    if model == "omission":
        # A deterministic lossy inbox: the first two messages to the
        # victim vanish.  Enough to eat a 2PC vote or outcome.
        return [
            FaultPlan([Omission(destination=name, budget=2)])
            for name in names
        ]
    if model == "duplication":
        return [
            FaultPlan([Duplication(destination=name, budget=2)])
            for name in names
        ]
    if model == "partition-heal":
        half = max(n // 2, 1)
        return [
            FaultPlan(
                [
                    Partition(
                        (frozenset(names[:half]), frozenset(names[half:])),
                        start=0,
                        heal_at=4 * n,
                    )
                ]
            )
        ]
    if model == "partition-forever":
        half = max(n // 2, 1)
        plans = [
            FaultPlan(
                [
                    Partition(
                        (frozenset(names[:half]), frozenset(names[half:])),
                    )
                ]
            )
        ]
        plans.extend(
            FaultPlan(
                [
                    Partition(
                        (
                            frozenset({name}),
                            frozenset(set(names) - {name}),
                        )
                    )
                ]
            )
            for name in names
        )
        return plans
    raise ValueError(
        f"unknown fault model {model!r}; available: {list(FAULT_MODELS)}"
    )


@dataclass
class SurvivabilityCell:
    """One (protocol, fault model) cell of the matrix.

    ``agreement`` and ``validity`` are ``"holds"`` or ``"violated"``
    (with a witness naming the plan and run); ``termination`` is
    ``"holds"`` or ``"stalled"`` — existential over the swept runs, in
    the spirit of Theorem 1 (one adversarial run suffices).  ``"n/a"``
    marks an empty model (e.g. no dead minority exists for N = 2).
    """

    protocol: str
    model: str
    agreement: str = "holds"
    validity: str = "holds"
    termination: str = "holds"
    witness: str = ""
    runs: int = 0
    admissible_runs: int = 0
    #: Violated fairness clause -> number of runs flagged with it.
    flagged: dict[str, int] = field(default_factory=dict)
    #: Safety violations observed in *admissible* runs only (the ones
    #: the acceptance criteria forbid for safe protocols).
    admissible_safety_violations: int = 0

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "model": self.model,
            "agreement": self.agreement,
            "validity": self.validity,
            "termination": self.termination,
            "witness": self.witness,
            "runs": self.runs,
            "admissible_runs": self.admissible_runs,
            "flagged": dict(sorted(self.flagged.items())),
            "admissible_safety_violations": (
                self.admissible_safety_violations
            ),
        }


def _input_vectors(n: int) -> list[tuple[int, ...]]:
    return [
        tuple([0] * n),
        tuple([1] * n),
        tuple(i % 2 for i in range(n)),
    ]


def _validity_holds(decisions: dict[str, int], inputs: tuple[int, ...]) -> bool:
    # Weak validity: every decided value was somebody's input.
    return set(decisions.values()) <= set(inputs)


def survivability_matrix(
    protocols: list[str] | None = None,
    fault_models: tuple[str, ...] = FAULT_MODELS,
    *,
    n: int | None = None,
    seeds: int = 1,
    max_steps: int = 800,
) -> list[SurvivabilityCell]:
    """Sweep *protocols* × *fault_models* and fold runs into cells.

    Every run is certified by the auditor; the cell records how many
    runs were admissible and which fairness clauses the rest violated,
    so "the protocol stalled" can always be traced to "…under an
    admissible run" or "…only outside the model".
    """
    if protocols is None:
        protocols = registry.names()
    cells: list[SurvivabilityCell] = []
    for protocol_name in protocols:
        entry = registry.info(protocol_name)
        protocol = entry.build(n)
        names = protocol.process_names
        for model in fault_models:
            cell = SurvivabilityCell(protocol=protocol_name, model=model)
            plans = plans_for(model, names)
            if not plans:
                cell.agreement = cell.validity = cell.termination = "n/a"
                cells.append(cell)
                continue
            for plan in plans:
                for inputs in _input_vectors(len(names)):
                    for scheduler in _schedulers_for(seeds):
                        _run_once(
                            protocol,
                            plan,
                            inputs,
                            scheduler,
                            max_steps,
                            cell,
                        )
            cells.append(cell)
    return cells


def _schedulers_for(seeds: int):
    yield RoundRobinScheduler()
    for seed in range(seeds):
        yield RandomScheduler(seed=seed, null_probability=0.05)


def _run_once(protocol, plan, inputs, base, max_steps, cell) -> None:
    # Imported here, not at module top: schedulers.faulty imports
    # faults.plan, whose package __init__ imports this module.
    from repro.schedulers.faulty import FaultyScheduler

    scheduler = FaultyScheduler(base, plan)
    initial = protocol.initial_configuration(inputs)
    result = simulate(
        protocol,
        initial,
        scheduler,
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )
    verdict = audit_run(
        protocol,
        initial,
        result.schedule,
        plan,
        fault_actions=tuple(result.fault_actions),
    )
    cell.runs += 1
    if verdict.admissible:
        cell.admissible_runs += 1
    for clause in verdict.violated_clauses:
        cell.flagged[clause] = cell.flagged.get(clause, 0) + 1

    where = f"{plan.describe()} inputs={''.join(map(str, inputs))}"
    if not result.agreement_holds:
        cell.agreement = "violated"
        if not cell.witness:
            cell.witness = f"agreement broken under {where}"
        if verdict.admissible:
            cell.admissible_safety_violations += 1
    if result.decisions and not _validity_holds(result.decisions, inputs):
        cell.validity = "violated"
        if not cell.witness:
            cell.witness = f"validity broken under {where}"
        if verdict.admissible:
            cell.admissible_safety_violations += 1
    if not result.decided:
        cell.termination = "stalled"
        if not cell.witness:
            cell.witness = (
                f"undecided after {result.steps} steps under {where}"
            )


def check_expectations(cells: list[SurvivabilityCell]) -> list[str]:
    """The paper's predictions, checked against a finished matrix.

    Returns a list of human-readable failures (empty = all good):

    * no safe protocol shows a safety violation in an *admissible* run
      (Theorem 1 kills only termination; agreement and validity are
      supposed to survive every admissible schedule);
    * Theorem 2's protocol terminates under every initially-dead
      minority plan, and stalls under some single mid-run crash;
    * 2PC stalls under message omission (the widened commit window).
    """
    failures: list[str] = []
    by_key = {(cell.protocol, cell.model): cell for cell in cells}

    for cell in cells:
        entry = registry.info(cell.protocol)
        if entry.safe and cell.admissible_safety_violations:
            failures.append(
                f"safe protocol {cell.protocol} broke safety in "
                f"{cell.admissible_safety_violations} admissible run(s) "
                f"under {cell.model}"
            )

    expectations = (
        ("initially-dead", "initially-dead-minority", "termination", "holds"),
        ("initially-dead", "one-mid-crash", "termination", "stalled"),
        ("2pc", "omission", "termination", "stalled"),
    )
    for protocol, model, attribute, expected in expectations:
        cell = by_key.get((protocol, model))
        if cell is None:
            continue
        actual = getattr(cell, attribute)
        if actual != expected:
            failures.append(
                f"{protocol} × {model}: expected {attribute}={expected}, "
                f"got {actual}"
            )
    return failures
