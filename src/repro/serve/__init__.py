"""``repro serve`` — exploration as a crash-recoverable service.

The CLI verbs (``check`` / ``attack`` / ``map`` / ``survive``) become
*jobs* submitted over a minimal HTTP/1.1 interface served straight from
``asyncio.start_server`` — no ``http.server``, no third-party web
stack.  The subsystem is headlined by robustness rather than features:

* **Admission control** — a bounded pending set; submissions beyond it
  are refused with ``429`` + ``Retry-After`` instead of queueing
  without bound (:mod:`repro.serve.jobs`).
* **Deadlines that degrade, not fail** — per-job wall-clock and memory
  ceilings stop the engine at a consistency point and return an honest
  partial result plus a final checkpoint, via the engine's cooperative
  :meth:`~repro.core.exploration.GlobalConfigurationGraph.request_stop`
  hook and the PR-3 budget guards.
* **Crash recovery** — every job persists its spec and state under a
  spool directory and checkpoints its engine there; a restarted daemon
  requeues interrupted jobs and resumes them fingerprint-identically
  (:mod:`repro.serve.spool`, exercised by the ``server-kill`` chaos
  scenario).
* **Result cache with single-flight** — completed results are cached on
  disk keyed by the same protocol-identity + reduction stamp the
  checkpoint layer verifies, and concurrent identical submissions share
  one exploration (:mod:`repro.serve.cache`, :mod:`repro.serve.jobs`).
* **Graceful shutdown** — SIGTERM/SIGINT flips ``/readyz`` to 503,
  drains running jobs to checkpoints, and leaves the spool resumable.

Entry points: ``python -m repro serve`` (daemon) and ``python -m repro
query`` (thin client).  See ``docs/MODEL.md`` § The exploration
service.
"""

from repro.serve.jobs import AdmissionError, JobManager
from repro.serve.server import ServeApp, ServeConfig
from repro.serve.spool import Spool
from repro.serve.wire import JobRecord, JobSpec, WireError, cache_key

__all__ = [
    "AdmissionError",
    "JobManager",
    "JobRecord",
    "JobSpec",
    "ServeApp",
    "ServeConfig",
    "Spool",
    "WireError",
    "cache_key",
]
