"""Tests for the figure renderers and DOT export."""

from repro.adversary.lemmas import (
    commutativity_diamond,
    find_bivalent_successor,
)
from repro.analysis.diagrams import figure1, figure2, figure3, graph_to_dot
from repro.core.events import NULL, Event, Schedule
from repro.core.exploration import explore


def _failure(arbiter3, arbiter3_analyzer):
    config = arbiter3.initial_configuration([0, 0, 1])
    config = arbiter3.apply_event(config, Event("p1", NULL))
    claim = Event("p0", ("claim", "p1", 0))
    outcome = find_bivalent_successor(
        arbiter3, arbiter3_analyzer, config, claim
    )
    return outcome.failure, claim


class TestFigure1:
    def test_renders_with_real_configurations(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        witness = commutativity_diamond(
            arbiter3,
            config,
            Schedule([Event("p1", NULL)]),
            Schedule([Event("p2", NULL)]),
        )
        text = figure1(witness)
        assert "Figure 1" in text
        assert "C3" in text
        assert "verified" in text


class TestFigures2And3:
    def test_figure2_names_the_pivot(self, arbiter3, arbiter3_analyzer):
        failure, claim = _failure(arbiter3, arbiter3_analyzer)
        text = figure2(failure, claim)
        assert "Figure 2" in text
        assert "p0" in text
        assert "0-valent" in text and "1-valent" in text

    def test_figure3_explains_the_contradiction(
        self, arbiter3, arbiter3_analyzer
    ):
        failure, claim = _failure(arbiter3, arbiter3_analyzer)
        text = figure3(failure, claim)
        assert "Figure 3" in text
        assert "bivalent" in text
        assert "fault mode" in text


class TestDotExport:
    def test_dot_structure(self, arbiter3, arbiter3_analyzer):
        graph = explore(
            arbiter3, arbiter3.initial_configuration([0, 0, 1])
        )
        dot = graph_to_dot(graph, arbiter3_analyzer)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "gold" in dot  # bivalent nodes colored
        assert "->" in dot

    def test_dot_without_analyzer(self, arbiter3):
        graph = explore(
            arbiter3, arbiter3.initial_configuration([0, 0, 0])
        )
        dot = graph_to_dot(graph)
        assert "white" in dot

    def test_dot_respects_max_nodes(self, arbiter3):
        graph = explore(
            arbiter3, arbiter3.initial_configuration([0, 0, 1])
        )
        dot = graph_to_dot(graph, max_nodes=3)
        assert "n3 [" not in dot
