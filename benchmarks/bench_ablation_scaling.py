"""Bench A3 — state explosion vs. N, plus direct N-scaling micro-benches."""

from repro.core.exploration import explore
from repro.protocols import ParityArbiterProcess, make_protocol


def test_a3_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "A3", rounds=1)
    by_family = {}
    for row in result.rows:
        by_family.setdefault(row["protocol"], []).append(row)
    for rows in by_family.values():
        sizes = sorted(rows, key=lambda r: r["N"])
        graphs = [r["max_graph"] for r in sizes]
        assert graphs == sorted(graphs)  # monotone growth in N


def test_explore_parity_arbiter_n4(benchmark):
    protocol = make_protocol(ParityArbiterProcess, 4)
    root = protocol.initial_configuration([0, 0, 1, 1])

    graph = benchmark(explore, protocol, root)
    assert graph.complete
    assert len(graph) > 1000  # the explosion is real
