"""A1 — ablation: what does the Lemma-3 search actually cost?

The proof of Lemma 3 is non-constructive about effort: it says a
bivalent successor *exists* in e(𝒞), not how far away it is.  This
ablation measures the adversary's per-stage search — avoiding-schedule
length (σ), configurations examined, and how often the trivial case
σ = ∅ suffices — as a function of protocol and exploration budget.

The headline finding mirrors the proof's structure: almost every stage
is IMMEDIATE (e(C) is itself bivalent, depth 0), because the adversary
only ever *stands* on bivalent configurations; the deferred case, when
it appears, stays shallow.  Budgets below the reachable-graph size make
the adversary honestly refuse (AdversaryStuck) rather than mis-schedule.
"""

from __future__ import annotations

from repro.adversary.flp import FLPAdversary
from repro.analysis.stats import mean
from repro.core.errors import AdversaryStuck
from repro.core.valency import ValencyAnalyzer
from repro.experiments.harness import ExperimentResult, experiment
from repro.experiments.zoo import bivalent_zoo
from repro.adversary.certificates import Lemma3Case

__all__ = ["run"]


@experiment("A1", "Ablation: cost of the Lemma-3 search per stage")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    stages = 15 if quick else 60
    budgets = (50, 100_000)
    rows = []
    for label, protocol in bivalent_zoo(quick):
        for budget in budgets:
            analyzer = ValencyAnalyzer(protocol)
            adversary = FLPAdversary(
                protocol, analyzer=analyzer, max_configurations=budget
            )
            try:
                certificate = adversary.build_run(stages=stages)
            except AdversaryStuck:
                rows.append(
                    {
                        "protocol": label,
                        "budget": budget,
                        "stages": 0,
                        "immediate": "-",
                        "deferred": "-",
                        "mean_sigma": "-",
                        "mean_examined": "-",
                        "outcome": "stuck (budget too small)",
                    }
                )
                continue
            records = certificate.stages
            immediate = sum(
                1 for r in records if r.case is Lemma3Case.IMMEDIATE
            )
            deferred = len(records) - immediate
            rows.append(
                {
                    "protocol": label,
                    "budget": budget,
                    "stages": len(records),
                    "immediate": immediate,
                    "deferred": deferred,
                    "mean_sigma": (
                        mean([r.schedule_length for r in records])
                        if records
                        else 0.0
                    ),
                    "mean_examined": (
                        mean(
                            [r.configurations_examined for r in records]
                        )
                        if records
                        else 0.0
                    ),
                    "outcome": certificate.mode.value,
                }
            )
    return ExperimentResult(
        exp_id="A1",
        title="Ablation: cost of the Lemma-3 search per stage",
        rows=tuple(rows),
        notes=(
            "the search cost stays small and flat across stages: the "
            "adversary pays for exactness once (valency analysis) and "
            "then each stage is near-constant work",
            "an insufficient budget produces an explicit refusal, never "
            "a silent wrong schedule (design decision #2 in DESIGN.md)",
        ),
        seed=seed,
        quick=quick,
    )
