"""E5 — Theorem 2: the initially-dead-processes protocol.

Positive direction: for N ∈ {3,5,7[,9]}, random input vectors, and random
dead sets of size < N/2, run the Section-4 protocol under a fair
scheduler and check that every live process decides, that all decisions
agree, and that the decided value is valid (some process's input).

Negative direction (the theorem's hypothesis is tight): with ⌈N/2⌉ or
more processes dead, no live process ever decides — everyone waits
forever for its (L-1)-th stage-1 message.
"""

from __future__ import annotations

import random

from repro.core.simulation import StopCondition, simulate
from repro.experiments.harness import ExperimentResult, experiment
from repro.protocols import InitiallyDeadProcess, make_protocol
from repro.schedulers import CrashPlan, RoundRobinScheduler

__all__ = ["run"]


def _trial(protocol, inputs, dead, max_steps):
    scheduler = RoundRobinScheduler(
        crash_plan=CrashPlan.initially_dead(frozenset(dead))
    )
    initial = protocol.initial_configuration(inputs)
    return simulate(
        protocol,
        initial,
        scheduler,
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )


@experiment("E5", "Theorem 2: consensus with initially dead processes")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = (3, 5) if quick else (3, 5, 7, 9)
    trials = 10 if quick else 40
    rng = random.Random(seed)
    rows = []
    for n in sizes:
        protocol = make_protocol(InitiallyDeadProcess, n)
        names = list(protocol.process_names)
        max_dead_ok = (n - 1) // 2  # strict majority must stay alive
        for num_dead in range(0, max_dead_ok + 1):
            decided = agreed = valid = 0
            for _ in range(trials):
                inputs = [rng.randint(0, 1) for _ in names]
                dead = rng.sample(names, num_dead)
                result = _trial(protocol, inputs, dead, max_steps=40 * n * n)
                live = [name for name in names if name not in dead]
                if all(name in result.decisions for name in live):
                    decided += 1
                if result.agreement_holds:
                    agreed += 1
                values = set(result.decisions.values())
                if values <= set(inputs):
                    valid += 1
            rows.append(
                {
                    "N": n,
                    "dead": num_dead,
                    "trials": trials,
                    "all_live_decided": decided,
                    "agreement": agreed,
                    "validity": valid,
                }
            )
        # Negative control: too many dead => nobody ever decides.  The
        # protocol needs L = floor(N/2)+1 live processes, so killing
        # ceil(N/2) of them leaves only L-1 alive.
        num_dead = n - n // 2
        stalled = 0
        for _ in range(trials):
            inputs = [rng.randint(0, 1) for _ in names]
            dead = rng.sample(names, num_dead)
            result = _trial(protocol, inputs, dead, max_steps=40 * n * n)
            if not result.decisions:
                stalled += 1
        rows.append(
            {
                "N": n,
                "dead": f"{num_dead} (majority gone)",
                "trials": trials,
                "all_live_decided": trials - stalled,
                "agreement": trials,
                "validity": trials,
            }
        )
    return ExperimentResult(
        exp_id="E5",
        title="Theorem 2: consensus with initially dead processes",
        rows=tuple(rows),
        notes=(
            "expected: with dead < N/2, all_live_decided == agreement == "
            "validity == trials; with a majority dead, "
            "all_live_decided == 0 (the protocol waits forever — the "
            "hypothesis is tight)",
        ),
        seed=seed,
        quick=quick,
    )
