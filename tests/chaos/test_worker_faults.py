"""Worker crash/hang recovery: no batch is ever silently dropped.

Each test injects a real fault into a real ``multiprocessing`` pool —
a SIGKILLed worker, a wedged worker, a timeout storm — and asserts two
things: the exploration still completes, and the resulting graph is
byte-identical to a serial run.  Identical fingerprints are the "no
silently dropped frontier batch" guarantee: a lost expansion would
change node ids, edges, or both.
"""

import os

import pytest

from repro.core.errors import WorkerPoolError
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.resilience import (
    ChaosConfig,
    ResilienceConfig,
    run_chaos_suite,
)
from repro.protocols import ParityArbiterProcess, make_protocol

BUDGET = 2_000


@pytest.fixture(scope="module")
def protocol():
    return make_protocol(ParityArbiterProcess, 3)


def _root(protocol):
    return protocol.initial_configuration([0, 0, 1])


@pytest.fixture(scope="module")
def clean_fingerprint(protocol):
    graph = GlobalConfigurationGraph(protocol)
    graph.explore(_root(protocol), max_configurations=BUDGET)
    return graph.fingerprint()


def _faulted_graph(protocol, chaos, resilience):
    graph = GlobalConfigurationGraph(
        protocol,
        workers=2,
        min_batch_per_worker=1,
        resilience=resilience,
        chaos=chaos,
    )
    try:
        result = graph.explore(_root(protocol), max_configurations=BUDGET)
        return result, graph.fingerprint(), graph.stats
    finally:
        graph.close()


class TestWorkerKill:
    def test_sigkilled_worker_is_detected_and_batch_redispatched(
        self, protocol, clean_fingerprint, tmp_path
    ):
        sentinel = str(tmp_path / "kill.sentinel")
        result, fingerprint, stats = _faulted_graph(
            protocol,
            ChaosConfig(kill_once_path=sentinel),
            ResilienceConfig(batch_timeout_s=10.0, max_retries=3),
        )
        assert result.complete
        assert fingerprint == clean_fingerprint
        assert os.path.exists(sentinel), "fault was never injected"
        assert stats.worker_timeouts >= 1
        assert stats.pool_rebuilds >= 1
        assert stats.worker_retries >= 1


class TestWorkerHang:
    def test_hung_worker_times_out_and_recovers(
        self, protocol, clean_fingerprint, tmp_path
    ):
        sentinel = str(tmp_path / "hang.sentinel")
        result, fingerprint, stats = _faulted_graph(
            protocol,
            ChaosConfig(hang_once_path=sentinel, hang_seconds=30.0),
            ResilienceConfig(batch_timeout_s=1.0, max_retries=3),
        )
        assert result.complete
        assert fingerprint == clean_fingerprint
        assert os.path.exists(sentinel)
        assert stats.worker_timeouts >= 1


class TestTimeoutExhaustion:
    def test_retry_exhaustion_falls_back_to_serial(
        self, protocol, clean_fingerprint
    ):
        # An absurd timeout fails every dispatch; the engine must give
        # up on the pool and still finish inline, identically.
        result, fingerprint, stats = _faulted_graph(
            protocol,
            None,
            ResilienceConfig(
                batch_timeout_s=1e-6, max_retries=1, backoff_base_s=0.0
            ),
        )
        assert result.complete
        assert fingerprint == clean_fingerprint
        assert stats.serial_fallbacks >= 1
        assert stats.pool_disabled == 1

    def test_no_fallback_policy_raises_worker_pool_error(self, protocol):
        graph = GlobalConfigurationGraph(
            protocol,
            workers=2,
            min_batch_per_worker=1,
            resilience=ResilienceConfig(
                batch_timeout_s=1e-6,
                max_retries=0,
                backoff_base_s=0.0,
                serial_fallback=False,
            ),
        )
        try:
            with pytest.raises(WorkerPoolError, match="dispatch"):
                graph.explore(_root(protocol), max_configurations=BUDGET)
        finally:
            graph.close()


class TestFullSuite:
    def test_all_scenarios_recover_byte_identically(self, protocol):
        outcomes = run_chaos_suite(
            protocol, workers=2, max_configurations=BUDGET
        )
        failed = [o.scenario for o in outcomes if not o.ok]
        assert not failed, f"chaos scenarios failed: {failed}"
