"""Integration tests: every experiment reproduces the paper's shape.

These are the reproduction's acceptance tests — each experiment's
"expected" note, asserted.  They run the experiments in quick mode (the
suite completes in seconds) and check the *qualitative* claims: who
wins, what is always true, where the boundary sits.
"""

import pytest

from repro.experiments.harness import run_experiment


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(exp_id):
        if exp_id not in cache:
            cache[exp_id] = run_experiment(exp_id, quick=True, seed=0)
        return cache[exp_id]

    return get


class TestE1Lemma1:
    def test_every_diamond_closes(self, results):
        for row in results("E1").rows:
            assert row["failures"] == 0
            assert row["diamonds_closed"] == row["trials"]

    def test_nontrivial_schedules_tested(self, results):
        for row in results("E1").rows:
            assert row["both_nonempty"] > 0


class TestE2Lemma2:
    def test_order_sensitive_protocols_have_bivalent_initials(self, results):
        rows = {row["protocol"]: row for row in results("E2").rows}
        assert rows["arbiter/3"]["bivalent"] == 4
        assert rows["parity-arbiter/3"]["bivalent"] == 4

    def test_input_determined_protocols_have_boundaries(self, results):
        rows = {row["protocol"]: row for row in results("E2").rows}
        for label in ("wait-for-all/3", "2pc/3", "3pc/3"):
            assert rows[label]["bivalent"] == 0
            assert "boundary" in rows[label]["witness"]

    def test_everything_verified(self, results):
        for row in results("E2").rows:
            assert row["verified"]

    def test_hypercube_partition(self, results):
        for row in results("E2").rows:
            assert (
                row["bivalent"] + row["0-valent"] + row["1-valent"]
                == row["initials"]
            )


class TestE3Lemma3:
    def test_searches_split_into_success_and_case2(self, results):
        for row in results("E3").rows:
            assert (
                row["immediate"] + row["deferred"] + row["case2_failures"]
                == row["searches"]
            )

    def test_parity_arbiter_shows_deferred_case(self, results):
        rows = {row["protocol"]: row for row in results("E3").rows}
        assert rows["parity-arbiter/3"]["deferred"] > 0

    def test_plain_arbiter_shows_case2(self, results):
        rows = {row["protocol"]: row for row in results("E3").rows}
        assert rows["arbiter/3"]["case2_failures"] > 0


class TestE4Theorem1:
    def test_nobody_ever_decides(self, results):
        for row in results("E4").rows:
            assert row["decisions"] == 0
            assert row["verified"]

    def test_parity_arbiter_sustains_staged_mode(self, results):
        rows = [
            row
            for row in results("E4").rows
            if row["protocol"] == "parity-arbiter/3"
        ]
        for row in rows:
            assert row["mode"] == "bivalence-preserving"
            assert row["stages_achieved"] == row["stages_requested"]
            assert row["faulty"] == "-"

    def test_fault_mode_names_one_process(self, results):
        for row in results("E4").rows:
            if row["mode"] == "fault":
                assert row["faulty"] != "-"

    def test_prefix_grows_with_stages_in_staged_mode(self, results):
        staged = [
            row
            for row in results("E4").rows
            if row["mode"] == "bivalence-preserving"
        ]
        by_protocol = {}
        for row in staged:
            by_protocol.setdefault(row["protocol"], []).append(row)
        for rows in by_protocol.values():
            ordered = sorted(rows, key=lambda r: r["stages_requested"])
            events = [r["events"] for r in ordered]
            assert events == sorted(events)
            assert events[0] < events[-1]


class TestE5Theorem2:
    def test_minority_dead_always_decides(self, results):
        for row in results("E5").rows:
            if isinstance(row["dead"], int):
                assert row["all_live_decided"] == row["trials"]
                assert row["agreement"] == row["trials"]
                assert row["validity"] == row["trials"]

    def test_majority_dead_never_decides(self, results):
        majority_rows = [
            row
            for row in results("E5").rows
            if isinstance(row["dead"], str)
        ]
        assert majority_rows
        for row in majority_rows:
            assert row["all_live_decided"] == 0


class TestE6CommitWindow:
    def test_every_delay_blocks(self, results):
        for row in results("E6").rows:
            assert row["blocked"]
            assert row["stalled_undecided"] > 0

    def test_lifting_unblocks(self, results):
        for row in results("E6").rows:
            assert row["decides_after_lift"]
            assert row["lift_steps"] > row["baseline_steps"]


class TestE7BenOr:
    def test_terminates_every_trial(self, results):
        for row in results("E7").rows:
            assert row["terminated"] == row["trials"]

    def test_agreement_never_violated(self, results):
        for row in results("E7").rows:
            assert row["agreement"] == row["trials"]

    def test_shared_coin_beats_private_and_stays_flat(self, results):
        coin_rows = [
            row for row in results("E7").rows if row["panel"] == "coin"
        ]
        by_n = {}
        for row in coin_rows:
            by_n.setdefault(row["N"], {})[row["coin"]] = row
        for n, pair in by_n.items():
            assert (
                pair["shared"]["mean_rounds"]
                < pair["private"]["mean_rounds"]
            ), n
        # Private-coin rounds grow with N; shared stays ~flat.
        sizes = sorted(by_n)
        private_means = [by_n[n]["private"]["mean_rounds"] for n in sizes]
        shared_means = [by_n[n]["shared"]["mean_rounds"] for n in sizes]
        assert private_means == sorted(private_means)
        assert max(shared_means) - min(shared_means) <= 1.5


class TestE8Synchronous:
    def test_all_columns_perfect(self, results):
        for row in results("E8").rows:
            assert row["agreement"] == row["trials"]
            assert row["validity"] == row["trials"]
            assert row["all_live_decided"] == row["trials"]
            assert row["exact_rounds"] == row["trials"]

    def test_both_fault_models_present(self, results):
        panels = {row["panel"] for row in results("E8").rows}
        assert any("crash" in panel for panel in panels)
        assert any("byzantine" in panel for panel in panels)


class TestE9PartialSynchrony:
    def test_agreement_everywhere(self, results):
        for row in results("E9").rows:
            assert row["agreement"] == row["trials"]

    def test_finite_gst_decides_infinite_does_not(self, results):
        for row in results("E9").rows:
            if row["panel"] == "GST":
                if row["param"] == "inf":
                    assert row["all_decided"] == 0
                else:
                    assert row["all_decided"] == row["trials"]

    def test_decision_round_tracks_gst(self, results):
        gst_rows = [
            row
            for row in results("E9").rows
            if row["panel"] == "GST" and row["param"] != "inf"
        ]
        ordered = sorted(gst_rows, key=lambda r: r["param"])
        rounds = [r["mean_decision_round"] for r in ordered]
        assert rounds == sorted(rounds)
        for row in ordered:
            assert row["mean_decision_round"] >= row["param"] - 1


class TestAblations:
    def test_a1_big_budget_never_stuck(self, results):
        for row in results("A1").rows:
            if row["budget"] >= 100_000:
                assert row["outcome"] != "stuck (budget too small)"

    def test_a2_adversary_never_decides_benign_always(self, results):
        for row in results("A2").rows:
            if row["scheduler"] == "flp-adversary":
                assert row["decided"] == 0
            else:
                assert row["decided"] == row["runs"]

    def test_a4_timeouts_trade_blocking_for_disagreement(self, results):
        rows = {row["protocol"]: row for row in results("A4").rows}
        assert rows["arbiter/4"]["exhaustive_agreement"] is True
        assert (
            rows["timeout-arbiter/4"]["exhaustive_agreement"] is False
        )
        # Both look live under fair scheduling — the trap.
        for row in results("A4").rows:
            assert row["fair_decided"] == row["trials"]
            assert row["fair_agreed"] == row["trials"]

    def test_a3_graphs_nonempty_and_modes_sound(self, results):
        for row in results("A3").rows:
            assert row["max_graph"] > 1
            assert 0 <= row["bivalent_frac"] <= 1
            assert row["mode"] in ("bivalence-preserving", "fault")
            if row["protocol"] == "parity-arbiter":
                assert row["mode"] == "bivalence-preserving"
                # The fraction is over ALL 2^N initial hypercube roots,
                # uniform-input (univalent) ones included.
                assert row["bivalent_frac"] > 0.1
            if row["protocol"] == "wait-for-all":
                assert row["bivalent_frac"] == 0.0
