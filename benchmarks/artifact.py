"""Shared helpers for emitting the ``BENCH_core_ops.json`` artifact.

The pytest-benchmark suites measure interactively; these helpers give
the bench modules a dependency-free ``python benchmarks/bench_*.py``
path that records the perf trajectory of the hot paths into a small
JSON artifact, committed once per PR so regressions are visible in
review diffs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable

#: Repo root: artifacts live here, covered by .gitignore (committed
#: deliberately with ``git add -f`` when refreshed).
_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default artifact (kept for the original bench modules).
ARTIFACT_PATH = _REPO_ROOT / "BENCH_core_ops.json"


def artifact_path(name: str) -> Path:
    """Repo-root path of the ``BENCH_<name>.json`` artifact."""
    return _REPO_ROOT / f"BENCH_{name}.json"


def best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-*repeat* wall time of ``fn()``, in seconds."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def write_artifact(
    sections: dict[str, object], name: str = "core_ops"
) -> Path:
    """Write *sections* plus environment metadata to ``BENCH_<name>.json``."""
    payload = {
        "artifact": f"BENCH_{name}",
        "generated_unix_time": round(time.time(), 3),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **sections,
    }
    path = artifact_path(name)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
