"""Server-kill chaos: SIGKILL the daemon mid-job, restart, compare.

The strongest recovery claim the service makes is that a daemon killed
with no warning — no drain, no final checkpoint beyond the periodic
cadence — resumes its in-flight jobs after restart and produces the
*same deterministic result block* an uninterrupted run would.  This
harness proves it end to end:

1. compute a cold reference result in-process (no daemon, no spool);
2. start a real daemon subprocess on a fresh spool, submit the job,
   wait until it is running with at least one checkpoint on disk;
3. ``SIGKILL`` the daemon;
4. start a second daemon on the same spool, which recovers the job
   from its record and resumes the engine from its checkpoint;
5. assert the recovered ``result`` block equals the cold reference.

Exposed through ``repro chaos --scenarios server-kill`` and pinned by
``tests/chaos/test_server_kill.py`` (the acceptance instance: a 50k-node
budget-capped exploration of ``benor``/3).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.resilience import ChaosOutcome
from repro.serve.client import ServeClient
from repro.serve.runner import execute_job
from repro.serve.wire import JobSpec, canonical_json

__all__ = ["run_server_kill", "start_daemon", "wait_for_endpoint"]


def start_daemon(
    spool: str | Path,
    *,
    checkpoint_every_s: float = 0.2,
    job_workers: int = 1,
    extra_args: tuple[str, ...] = (),
) -> subprocess.Popen:
    """Launch ``python -m repro serve`` on *spool* (port auto-picked)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--spool",
        str(spool),
        "--checkpoint-every",
        str(checkpoint_every_s),
        "--job-workers",
        str(job_workers),
        *extra_args,
    ]
    return subprocess.Popen(
        cmd,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )


def wait_for_endpoint(
    spool: str | Path,
    process: subprocess.Popen,
    timeout_s: float = 30.0,
) -> ServeClient:
    """Poll until the daemon has written endpoint.json and answers
    ``/healthz`` *with its own pid* (a stale endpoint from a killed
    predecessor must not satisfy the wait)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {process.returncode}"
            )
        try:
            client = ServeClient.from_spool(spool, timeout_s=5.0)
            response = client.healthz()
            if (
                response.status == 200
                and response.json().get("pid") == process.pid
            ):
                return client
        except (ConnectionError, OSError, ValueError):
            pass
        time.sleep(0.05)
    raise TimeoutError(f"daemon on {spool} not ready within {timeout_s}s")


def _stop_daemon(process: subprocess.Popen, timeout_s: float = 20.0) -> None:
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout_s)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


def run_server_kill(
    protocol_name: str,
    *,
    n: int | None = None,
    budget: int = 50_000,
    checkpoint_every_s: float = 0.2,
    work_dir: str | None = None,
    timeout_s: float = 300.0,
) -> ChaosOutcome:
    """SIGKILL a daemon mid-check-job; the restarted daemon must answer
    with a ``result`` block identical to a cold in-process run."""
    spec = JobSpec(verb="check", protocol=protocol_name, n=n, budget=budget)

    # Cold reference: same spec, no daemon, no checkpoints.
    reference = canonical_json(execute_job(spec)["result"])

    own_dir = None
    if work_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="flpkit-server-kill-")
        work_dir = own_dir.name
    spool = Path(work_dir) / "spool"
    first = second = None
    try:
        first = start_daemon(spool, checkpoint_every_s=checkpoint_every_s)
        client = wait_for_endpoint(spool, first)
        submitted = client.submit(spec.to_dict())
        if submitted.status not in (200, 202):
            return ChaosOutcome(
                scenario="server-kill",
                recovered=False,
                fingerprint_match=False,
                detail=f"submit failed: {submitted.status} "
                f"{submitted.body[:200]!r}",
            )
        job_id = submitted.json()["job_id"]

        # Wait until the job is demonstrably mid-flight: running, with
        # at least one engine checkpoint in the spool.  Killing before
        # the first checkpoint would still recover (re-run from
        # scratch), but the interesting claim is resume-from-snapshot.
        deadline = time.monotonic() + timeout_s
        mid_flight = False
        while time.monotonic() < deadline:
            view = client.job(job_id).json()
            if view["state"] == "done":
                break  # too fast to interrupt; still a valid comparison
            if view["state"] == "running" and view["has_checkpoint"]:
                mid_flight = True
                break
            time.sleep(0.02)

        os.kill(first.pid, signal.SIGKILL)
        first.wait()

        second = start_daemon(spool, checkpoint_every_s=checkpoint_every_s)
        client = wait_for_endpoint(spool, second)
        result = None
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            response = client.result(job_id)
            if response.status == 200:
                result = response
                break
            view = client.job(job_id).json()
            if view["state"] == "failed":
                return ChaosOutcome(
                    scenario="server-kill",
                    recovered=False,
                    fingerprint_match=False,
                    detail=f"job failed after restart: {view['error']}",
                )
            time.sleep(0.1)
        if result is None:
            return ChaosOutcome(
                scenario="server-kill",
                recovered=False,
                fingerprint_match=False,
                detail=f"no result within {timeout_s}s of restart",
            )
        view = client.job(job_id).json()
        recovered_block = canonical_json(json.loads(result.body)["result"])
        match = recovered_block == reference
        return ChaosOutcome(
            scenario="server-kill",
            recovered=True,
            fingerprint_match=match,
            detail=(
                f"mid_flight={mid_flight} resumes={view['resumes']} "
                f"result_match={match}"
            ),
            stats={
                "mid_flight": mid_flight,
                "resumes": view["resumes"],
                "budget": budget,
            },
        )
    finally:
        for process in (first, second):
            if process is not None:
                _stop_daemon(process)
        if own_dir is not None:
            own_dir.cleanup()
