"""Phased Ben-Or: the randomization escape hatch, executor-ready.

The conclusion's first escape from impossibility is Ben-Or's
coin-flipping consensus ("Another Advantage of Free Choice"): safety is
deterministic, termination is only probabilistic — which is exactly
what sidesteps FLP, since the impossibility only forbids *deterministic*
termination.  This implementation runs under
:func:`repro.synchrony.run_partial_sync`, so the same graded
adversaries drive it and the rotating coordinator alike.

Round structure (two phases, binary values):

0. **Report**: broadcast ``("R", estimate)``.
1. **Propose**: a process whose reports show a strict majority of the
   full roster for one value broadcasts ``("P", v)``; otherwise
   ``("P", None)``.  On receipt: any ``f + 1`` matching non-``None``
   proposals decide ``v``; a single one adopts ``v`` as the new
   estimate; none at all flips a seeded local coin.

Safety is the majority-intersection argument: two conflicting values
cannot both win a strict majority of reports, so all non-``None``
proposals in a round agree.  If any process decides ``v`` on ``f + 1``
proposals, every process that loses at most ``f`` of them still hears
one, adopts ``v``, and the next round is unanimous — which is why the
per-receiver drop cap of ``f`` in the Monte-Carlo cells preserves
termination for ``f < n/2`` under the oblivious adversary, while an
adaptive adversary (or ``f ≥ n/2``) can starve majorities and push the
protocol onto the slow all-coins-agree path.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.core.seeding import stable_rng
from repro.synchrony.partial import PhasedProcess

__all__ = ["BenOrPhasedProcess"]


class BenOrPhasedProcess(PhasedProcess):
    """One Ben-Or process.  Tolerates ``f`` silent peers per phase.

    ``f`` may be any value in ``[0, n)`` — cells beyond the ``f < n/2``
    boundary are deliberately constructible so the sweep can chart the
    termination collapse, not just the safe region.  Safety (agreement
    + validity) holds for every ``f``; only the termination guarantee
    has the ``n > 2f`` precondition.
    """

    PHASES = 2

    def __init__(self, name: str, peers: Sequence[str], f: int, seed: int = 0):
        super().__init__(name, peers)
        if not 0 <= f < self.n:
            raise ValueError(f"need 0 <= f < n={self.n}, got f={f}")
        self.f = f
        self.seed = seed

    def initial_state(self, input_value: int) -> Hashable:
        if input_value not in (0, 1):
            raise ValueError(f"Ben-Or is binary; got input {input_value!r}")
        # (estimate, decided value or None, reports, proposals) where the
        # scratch sets hold (sender, value) pairs for the current round.
        return (input_value, None, frozenset(), frozenset())

    def outgoing(
        self, state: Hashable, round_number: int, phase: int
    ) -> Mapping[str, Hashable]:
        estimate, decided, reports, _proposals = state
        if phase == 0:
            return {peer: ("R", estimate) for peer in self.peers}
        if phase == 1:
            if decided is not None:
                # A decided process proposes its value forever, so
                # laggards keep receiving deciding evidence.
                return {peer: ("P", decided) for peer in self.peers}
            counts: dict[int, int] = {}
            for _sender, value in reports:
                counts[value] = counts.get(value, 0) + 1
            for value, count in sorted(counts.items()):
                if count > self.n / 2:
                    return {peer: ("P", value) for peer in self.peers}
            return {peer: ("P", None) for peer in self.peers}
        return {}

    def update(
        self,
        state: Hashable,
        round_number: int,
        phase: int,
        received: Mapping[str, Hashable],
    ) -> Hashable:
        estimate, decided, reports, proposals = state
        if phase == 0:
            for sender, payload in received.items():
                if payload[0] == "R":
                    reports = reports | {(sender, payload[1])}
            return (estimate, decided, reports, proposals)

        for sender, payload in received.items():
            if payload[0] == "P":
                proposals = proposals | {(sender, payload[1])}

        if decided is None:
            counts: dict[int, int] = {}
            for _sender, value in proposals:
                if value is not None:
                    counts[value] = counts.get(value, 0) + 1
            if counts:
                # All non-None proposals agree (majority intersection);
                # the deterministic max is for paranoia, not choice.
                value = max(counts, key=lambda v: (counts[v], v))
                if counts[value] >= self.f + 1:
                    decided = value
                    estimate = value
                else:
                    estimate = value
            else:
                estimate = stable_rng(
                    "benor-coin", self.seed, self.name, round_number
                ).randrange(2)

        # End of round: clear the scratch sets.
        return (estimate, decided, frozenset(), frozenset())

    def decision(self, state: Hashable) -> int | None:
        return state[1]
