"""Events and schedules (paper, Section 2).

A step is completely determined by the pair ``e = (p, m)``: process ``p``
receives message value ``m`` (or the null marker) and moves according to
its transition function.  The paper calls ``e`` an *event*.  A *schedule*
from a configuration ``C`` is a finite or infinite sequence of events
that can be applied in turn starting from ``C``; the associated sequence
of steps is a *run*.

Events and schedules here are pure data.  Applying them to configurations
requires the protocol's transition functions and lives on
:class:`~repro.core.protocol.Protocol`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, overload

from repro.core.configuration import Configuration
from repro.core.messages import Message

__all__ = ["NULL", "Event", "Schedule"]

#: The null delivery marker: ``receive(p)`` returned nothing.
NULL = None


class Event:
    """The event ``e = (p, m)``: process *p* receives message value *m*.

    ``m`` may be :data:`NULL`, modeling a ``receive`` that returns the
    empty marker — such an event is applicable to *every* configuration,
    which is what lets a process "always take another step".
    """

    __slots__ = ("process", "value", "_hash")

    def __init__(self, process: str, value: Hashable | None = NULL):
        object.__setattr__(self, "process", process)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((process, value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Event is immutable")

    @property
    def is_null_delivery(self) -> bool:
        """``True`` iff this event delivers the null marker."""
        return self.value is NULL

    @property
    def message(self) -> Message | None:
        """The buffer message this event consumes, or ``None`` for null."""
        if self.is_null_delivery:
            return None
        return Message(self.process, self.value)

    def is_applicable(self, configuration: Configuration) -> bool:
        """Whether this event can be applied to *configuration*.

        Null deliveries are always applicable; a real delivery requires
        the message ``(p, m)`` to be present in the buffer.
        """
        if self.process not in configuration:
            return False
        if self.is_null_delivery:
            return True
        return Message(self.process, self.value) in configuration.buffer

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.process == other.process and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Reconstruct through __init__ so the cached hash is recomputed
        # process-locally (see the same note on Message).
        return (Event, (self.process, self.value))

    def __repr__(self) -> str:
        value = "NULL" if self.is_null_delivery else repr(self.value)
        return f"Event({self.process!r}, {value})"


class Schedule:
    """A finite sequence of events, applied left to right.

    Immutable; concatenation builds new schedules.  The empty schedule is
    the identity: ``Schedule().apply_to(C) == C`` for every ``C`` (via
    :meth:`Protocol.apply_schedule`).
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()):
        self._events = tuple(events)
        for event in self._events:
            if not isinstance(event, Event):
                raise TypeError(
                    f"Schedule items must be Events, got "
                    f"{type(event).__name__}"
                )

    @classmethod
    def single(cls, event: Event) -> "Schedule":
        """A one-event schedule."""
        return cls((event,))

    @property
    def events(self) -> tuple[Event, ...]:
        """The events, in application order."""
        return self._events

    def processes(self) -> frozenset[str]:
        """The set of processes taking steps in this schedule.

        This is the set Lemma 1 requires to be disjoint between two
        commuting schedules.
        """
        return frozenset(event.process for event in self._events)

    def is_disjoint_from(self, other: "Schedule") -> bool:
        """Lemma 1's hypothesis: no process steps in both schedules."""
        return not (self.processes() & other.processes())

    def then(self, other: "Schedule | Event") -> "Schedule":
        """Concatenation: this schedule followed by *other*."""
        if isinstance(other, Event):
            return Schedule(self._events + (other,))
        return Schedule(self._events + other._events)

    def __add__(self, other: "Schedule") -> "Schedule":
        if not isinstance(other, Schedule):
            return NotImplemented
        return Schedule(self._events + other._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    @overload
    def __getitem__(self, index: int) -> Event: ...

    @overload
    def __getitem__(self, index: slice) -> "Schedule": ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Schedule(self._events[index])
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        if len(self._events) > 6:
            head = ", ".join(repr(e) for e in self._events[:3])
            return (
                f"Schedule([{head}, ... {len(self._events) - 3} more])"
            )
        inner = ", ".join(repr(e) for e in self._events)
        return f"Schedule([{inner}])"
