"""Opt-in multiprocessing frontier expansion for the exploration engine.

The configuration graph grows by expanding BFS frontiers, and each
node's expansion is independent: enumerate the enabled events, apply the
(pure, deterministic) transition function, report the successors.  That
makes frontier levels embarrassingly parallel — *provided* interning
stays centralized.  The contract here:

* Workers receive rich :class:`~repro.core.configuration.Configuration`
  objects (picklable via ``__reduce__``; hashes are recomputed
  worker-side, so nothing depends on cross-process ``PYTHONHASHSEED``).
* Workers return, per node, one *delta* per enabled event — ``(event,
  stepping process's new state, post-delivery buffer or None, final
  buffer)`` — never packed ids.  Only the parent interns, so id
  assignment is a single-writer sequence; the intermediate post-delivery
  buffer is included so the parent allocates buffer ids in exactly the
  serial engine's first-seen order, making the merged graph (packed
  encodings included) byte-identical to a serial run.
* Expansion is all-or-nothing per node: the parent applies the budget
  while merging, discarding whole expansions that no longer fit, exactly
  like the serial path.

Workers keep process-local memos for the step function and buffer
transitions; they live for the lifetime of the pool, so repeated batches
amortize them.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Hashable

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolViolation
from repro.core.events import Event
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState
from repro.core.protocol import Protocol
from repro.core.resilience import ChaosConfig

__all__ = ["init_worker", "expand_configuration", "ExpansionDelta"]

#: One successor, as a delta against the expanded configuration: the
#: event taken, the stepping process's new state, the intermediate
#: post-delivery buffer (None for null deliveries), and the new buffer.
ExpansionDelta = "tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]"

# Worker-process globals, set once by the pool initializer.
_PROTOCOL: Protocol | None = None
_CHAOS: ChaosConfig | None = None
_STEPS: dict[tuple[str, ProcessState, Hashable], tuple] = {}
_DELIVERIES: dict[tuple[MessageBuffer, Message], MessageBuffer] = {}
_SENDS: dict[tuple[MessageBuffer, tuple[Message, ...]], MessageBuffer] = {}
_PROTOCOL_STEPS: dict[tuple[Event, ProcessState, MessageBuffer], tuple] = {}


def init_worker(
    protocol: Protocol, chaos: ChaosConfig | None = None
) -> None:
    """Pool initializer: bind the protocol and reset the memos.

    *chaos* carries the fault-injection hooks for the chaos harness;
    production engines pass ``None``.  The pool re-runs this initializer
    in respawned workers, so chaos state must live in sentinel files
    (claimed exactly once), never in these process globals.
    """
    global _PROTOCOL, _CHAOS, _STEPS, _DELIVERIES, _SENDS, _PROTOCOL_STEPS
    _PROTOCOL = protocol
    _CHAOS = chaos
    _STEPS = {}
    _DELIVERIES = {}
    _SENDS = {}
    _PROTOCOL_STEPS = {}


def _claim_sentinel(path: str) -> bool:
    """Atomically claim *path*; True for exactly one claimant ever."""
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def _maybe_inject_fault() -> None:
    """Run the worker-side chaos faults, each at most once per path.

    ``kill_once_path``: die by SIGKILL — the parent sees a batch that
    never completes, exactly like a real OOM-killed or crashed worker.
    ``hang_once_path``: sleep far past the batch timeout, modeling a
    wedged worker; the parent's recovery path is identical.
    """
    chaos = _CHAOS
    if chaos is None:
        return
    if chaos.kill_once_path and _claim_sentinel(chaos.kill_once_path):
        os.kill(os.getpid(), signal.SIGKILL)
    if chaos.hang_once_path and _claim_sentinel(chaos.hang_once_path):
        time.sleep(chaos.hang_seconds)


def expand_configuration(
    configuration: Configuration,
) -> tuple[
    float,
    list[tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]],
]:
    """Expand one configuration: ``(busy_seconds, deltas)``.

    Deltas are emitted in the canonical enabled-event order, so the
    parent's merge reproduces the serial engine's edge order exactly.
    """
    protocol = _PROTOCOL
    if protocol is None:  # pragma: no cover - misuse guard
        raise RuntimeError("worker used before init_worker()")
    _maybe_inject_fault()
    started = time.perf_counter()
    if getattr(protocol, "custom_step_semantics", False):
        deltas = _expand_via_protocol(protocol, configuration)
        return time.perf_counter() - started, deltas
    deltas: list[
        tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]
    ] = []
    buffer = configuration.buffer
    for event in protocol.enabled_events(configuration, include_null=True):
        state = configuration.state_of(event.process)
        step_key = (event.process, state, event.value)
        step = _STEPS.get(step_key)
        if step is None:
            transition = protocol.process(event.process).apply(
                state, event.value
            )
            for message in transition.sends:
                if message.destination not in protocol.process_names:
                    raise ProtocolViolation(
                        f"process {event.process} sent a message to "
                        f"unknown process {message.destination!r}"
                    )
            step = (transition.state, transition.sends)
            _STEPS[step_key] = step
        new_state, sends = step

        new_buffer = buffer
        delivered = None
        if not event.is_null_delivery:
            message = event.message
            delivery_key = (new_buffer, message)
            delivered = _DELIVERIES.get(delivery_key)
            if delivered is None:
                delivered = new_buffer.deliver(message)
                _DELIVERIES[delivery_key] = delivered
            new_buffer = delivered
        if sends:
            send_key = (new_buffer, sends)
            sent = _SENDS.get(send_key)
            if sent is None:
                sent = new_buffer.send_all(sends)
                _SENDS[send_key] = sent
            new_buffer = sent

        deltas.append((event, new_state, delivered, new_buffer))
    return time.perf_counter() - started, deltas


def _expand_via_protocol(
    protocol: Protocol, configuration: Configuration
) -> list[tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]]:
    """Expansion for protocols with non-standard step semantics.

    Protocols flagging ``custom_step_semantics`` (fault injection:
    :class:`~repro.faults.model.FaultedProtocol`) own their event
    vocabulary and their buffer transitions, so every step routes
    through ``protocol.apply_event`` instead of the inlined fast path
    above.  The intermediate post-consumption buffer the parent needs
    for id-allocation parity comes from
    :meth:`~repro.core.protocol.Protocol.consumed_message`.

    Memo key: ``(event, stepping state, buffer)``.  Sound because a
    step is local by the model — the successor's changed components
    (stepping process's state, buffer) are a function of exactly those
    three inputs, for faulted protocols too (the static fault fragment
    is configuration-independent).
    """
    deltas: list[
        tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]
    ] = []
    buffer = configuration.buffer
    for event in protocol.enabled_events(configuration, include_null=True):
        state = configuration.state_of(event.process)
        key = (event, state, buffer)
        cached = _PROTOCOL_STEPS.get(key)
        if cached is None:
            message = protocol.consumed_message(event)
            delivered = None
            if message is not None:
                delivery_key = (buffer, message)
                delivered = _DELIVERIES.get(delivery_key)
                if delivered is None:
                    delivered = buffer.deliver(message)
                    _DELIVERIES[delivery_key] = delivered
            successor = protocol.apply_event(configuration, event)
            cached = (
                successor.state_of(event.process),
                delivered,
                successor.buffer,
            )
            _PROTOCOL_STEPS[key] = cached
        deltas.append((event,) + cached)
    return deltas
