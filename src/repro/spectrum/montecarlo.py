"""The Monte-Carlo sweep runtime: grid cells, checkpoints, fan-out.

A *cell* fixes one point of the synchrony spectrum — (protocol, n, f,
adversary grade, GST, detector class) — and the runtime runs a batch of
seeded simulations there, reporting termination probability and
expected rounds-to-decide with 95% confidence intervals.  Every run is
a pure function of ``(base_seed, cell key, sample index)`` via
:func:`repro.core.seeding.stable_seed`, so a sweep's aggregate
fingerprint is byte-identical across serial, parallel, and
killed-and-resumed executions — the property ``repro chaos --scenarios
sweep-kill`` enforces with a real SIGKILL.

Robustness mirrors the exploration engine's contract:

* per-cell checkpointing (atomic tmp + rename) with resume;
* fan-out over a ``multiprocessing`` pool, merged deterministically;
* wall-clock / memory budgets degrade to a
  :class:`repro.core.resilience.PartialResult` covering the completed
  cells instead of dying;
* a sticky, thread-safe :meth:`SweepRunner.request_stop` latch so the
  serve daemon's deadline watchdog and drain path can stop a sweep at
  the next cell boundary.

:func:`check_phase_expectations` states the phase boundary the paper
predicts — Ben-Or terminates in every sampled run for ``f < n/2`` under
the oblivious adversary but degrades under the adaptive one; the DLS
rotating coordinator decides within ``f + 1`` rounds after GST; the
GST = ∞ deterministic cell never decides — and the benchmark gates on
it.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.resilience import BudgetGuard, PartialResult, ResilienceConfig
from repro.core.seeding import stable_seed
from repro.spectrum.adversary import ADVERSARY_GRADES, make_adversary
from repro.spectrum.protocols import BenOrPhasedProcess
from repro.synchrony.detectors import (
    DetectorGuidedProcess,
    EventuallyStrongDetector,
    PerfectDetector,
)
from repro.synchrony.partial import (
    RotatingCoordinatorProcess,
    run_partial_sync,
)

__all__ = [
    "PROTOCOL_FAMILIES",
    "DETECTOR_CLASSES",
    "SpectrumCell",
    "CellOutcome",
    "SweepResult",
    "SweepRunner",
    "run_cell",
    "default_grid",
    "smoke_grid",
    "check_phase_expectations",
]

PROTOCOL_FAMILIES = ("benor", "rotating")
DETECTOR_CLASSES = ("none", "perfect", "evstrong")
_GRADES = ("none",) + ADVERSARY_GRADES

_CHECKPOINT_VERSION = 1


def _canonical(payload: object) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


@dataclass(frozen=True)
class SpectrumCell:
    """One grid point plus its sampling plan.

    ``gst=None`` means GST never arrives within the horizon (the FLP
    regime); ``drop_probability`` is the omission-clause probability the
    cell's adversary draws against (inspecting grades typically run at
    1.0 — their power is *choice*, not volume).
    """

    protocol: str
    n: int
    f: int
    grade: str
    gst: int | None = None
    detector: str = "none"
    samples: int = 100
    horizon: int = 50
    drop_probability: float = 1.0

    def __post_init__(self):
        if self.protocol not in PROTOCOL_FAMILIES:
            raise ValueError(
                f"protocol must be one of {PROTOCOL_FAMILIES}, "
                f"got {self.protocol!r}"
            )
        if self.grade not in _GRADES:
            raise ValueError(
                f"grade must be one of {_GRADES}, got {self.grade!r}"
            )
        if self.detector not in DETECTOR_CLASSES:
            raise ValueError(
                f"detector must be one of {DETECTOR_CLASSES}, "
                f"got {self.detector!r}"
            )
        if self.n < 2:
            raise ValueError(f"need n >= 2, got {self.n}")
        if self.protocol == "rotating":
            if not 0 <= self.f < self.n / 2:
                raise ValueError(
                    f"rotating requires N > 2f; n={self.n}, f={self.f}"
                )
        elif not 0 <= self.f < self.n:
            raise ValueError(f"need 0 <= f < n; n={self.n}, f={self.f}")
        if self.detector != "none" and self.protocol != "rotating":
            raise ValueError("detector classes apply to rotating cells only")
        if self.gst is not None and self.gst < 1:
            raise ValueError(f"gst must be >= 1 or None, got {self.gst}")
        if self.samples < 1:
            raise ValueError(f"need samples >= 1, got {self.samples}")
        if self.horizon < 1:
            raise ValueError(f"need horizon >= 1, got {self.horizon}")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], "
                f"got {self.drop_probability}"
            )

    def key(self) -> str:
        """Canonical cell identifier — the checkpoint / fingerprint key."""
        gst = "inf" if self.gst is None else str(self.gst)
        return (
            f"{self.protocol}/n{self.n}/f{self.f}/{self.grade}"
            f"/p{self.drop_probability:g}/gst-{gst}/det-{self.detector}"
            f"/s{self.samples}/h{self.horizon}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "grade": self.grade,
            "gst": self.gst,
            "detector": self.detector,
            "samples": self.samples,
            "horizon": self.horizon,
            "drop_probability": self.drop_probability,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SpectrumCell":
        return cls(**dict(data))


def _wilson_interval(hits: int, trials: int) -> tuple[float, float]:
    """95% Wilson score interval for a binomial proportion."""
    if trials == 0:
        return (0.0, 1.0)
    z = 1.959963984540054
    phat = hits / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(
            phat * (1.0 - phat) / trials + z * z / (4 * trials * trials)
        )
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def _mean_interval(
    values: Sequence[int],
) -> tuple[float, tuple[float, float]] | None:
    """Sample mean with a normal-approximation 95% interval."""
    if not values:
        return None
    k = len(values)
    mean = sum(values) / k
    if k == 1:
        return (mean, (mean, mean))
    variance = sum((v - mean) ** 2 for v in values) / (k - 1)
    margin = 1.959963984540054 * math.sqrt(variance / k)
    return (mean, (mean - margin, mean + margin))


@dataclass
class CellOutcome:
    """Aggregated verdict for one cell.  Deterministic: no timing."""

    cell: SpectrumCell
    terminated: int
    termination_rate: float
    termination_ci: tuple[float, float]
    mean_rounds: float | None
    rounds_ci: tuple[float, float] | None
    max_round: int | None
    max_post_gst: int | None
    agreement_violations: int
    validity_violations: int
    fault_counters: dict[str, int]

    def to_dict(self) -> dict[str, object]:
        return {
            "cell": self.cell.to_dict(),
            "terminated": self.terminated,
            "termination_rate": round(self.termination_rate, 6),
            "termination_ci": [round(x, 6) for x in self.termination_ci],
            "mean_rounds": (
                None if self.mean_rounds is None else round(self.mean_rounds, 6)
            ),
            "rounds_ci": (
                None
                if self.rounds_ci is None
                else [round(x, 6) for x in self.rounds_ci]
            ),
            "max_round": self.max_round,
            "max_post_gst": self.max_post_gst,
            "agreement_violations": self.agreement_violations,
            "validity_violations": self.validity_violations,
            "fault_counters": dict(sorted(self.fault_counters.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CellOutcome":
        return cls(
            cell=SpectrumCell.from_dict(data["cell"]),
            terminated=data["terminated"],
            termination_rate=data["termination_rate"],
            termination_ci=tuple(data["termination_ci"]),
            mean_rounds=data["mean_rounds"],
            rounds_ci=(
                None if data["rounds_ci"] is None else tuple(data["rounds_ci"])
            ),
            max_round=data["max_round"],
            max_post_gst=data["max_post_gst"],
            agreement_violations=data["agreement_violations"],
            validity_violations=data["validity_violations"],
            fault_counters=dict(data["fault_counters"]),
        )


def run_cell(cell: SpectrumCell, base_seed: int = 0) -> CellOutcome:
    """Run every sample of one cell.  Pure in (cell, base_seed)."""
    names = [f"p{j}" for j in range(cell.n)]
    terminated = 0
    rounds: list[int] = []
    post_gst: list[int] = []
    agreement_violations = 0
    validity_violations = 0
    counters: dict[str, int] = {}

    for index in range(cell.samples):
        run_seed = stable_seed("spectrum-run", base_seed, cell.key(), index)
        rng = random.Random(run_seed)
        inputs = {name: rng.randrange(2) for name in names}
        crash_count = rng.randint(0, cell.f) if cell.f else 0
        crash_rounds = {
            name: 1 for name in sorted(rng.sample(names, crash_count))
        }
        gst = cell.horizon + 1 if cell.gst is None else cell.gst

        adversary = None
        if cell.grade != "none":
            cap = (
                max(0, cell.f - crash_count)
                if cell.protocol == "benor"
                else None
            )
            adversary = make_adversary(
                cell.grade,
                seed=run_seed,
                per_receiver_cap=cap,
                drop_probability=cell.drop_probability,
            )
            adversary.begin_run(run_seed)

        if cell.protocol == "benor":
            processes = [
                BenOrPhasedProcess(name, names, cell.f, seed=run_seed)
                for name in names
            ]
        else:
            detector = None
            if cell.detector == "perfect":
                detector = PerfectDetector(names, crash_rounds)
            elif cell.detector == "evstrong":
                detector = EventuallyStrongDetector(
                    names,
                    crash_rounds,
                    stabilization_time=gst,
                    seed=run_seed & 0x7FFFFFFF,
                )
            if detector is None:
                processes = [
                    RotatingCoordinatorProcess(name, names, cell.f)
                    for name in names
                ]
            else:
                processes = [
                    DetectorGuidedProcess(name, names, cell.f, detector)
                    for name in names
                ]

        result = run_partial_sync(
            processes,
            inputs,
            gst=gst,
            crash_rounds=crash_rounds,
            max_rounds=cell.horizon,
            adversary=adversary,
        )

        if not result.agreement_holds:
            agreement_violations += 1
        input_values = set(inputs.values())
        if any(
            value not in input_values for value in result.decisions.values()
        ):
            validity_violations += 1
        if result.all_live_decided:
            terminated += 1
            last = max(
                result.decision_rounds[name] for name in result.live
            )
            rounds.append(last)
            if cell.gst is not None:
                post_gst.append(max(0, last - cell.gst + 1))
        if adversary is not None:
            for key, value in adversary.counters.as_dict().items():
                if value:
                    counters[key] = counters.get(key, 0) + value

    stats = _mean_interval(rounds)
    return CellOutcome(
        cell=cell,
        terminated=terminated,
        termination_rate=terminated / cell.samples,
        termination_ci=_wilson_interval(terminated, cell.samples),
        mean_rounds=None if stats is None else stats[0],
        rounds_ci=None if stats is None else stats[1],
        max_round=max(rounds) if rounds else None,
        max_post_gst=max(post_gst) if post_gst else None,
        agreement_violations=agreement_violations,
        validity_violations=validity_violations,
        fault_counters=counters,
    )


def _cell_worker(payload: tuple[dict, int]) -> tuple[str, dict]:
    cell_data, base_seed = payload
    cell = SpectrumCell.from_dict(cell_data)
    return cell.key(), run_cell(cell, base_seed).to_dict()


@dataclass
class SweepResult:
    """Aggregate of a sweep: completed cells plus degradation report."""

    outcomes: dict[str, CellOutcome]
    total_cells: int
    base_seed: int
    resumed_cells: int = 0
    partial: PartialResult | None = None

    @property
    def complete(self) -> bool:
        return len(self.outcomes) == self.total_cells

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON of all completed cells.

        Covers cell outcomes only — never timing, worker count, or
        resume history — so serial, parallel, and killed-and-resumed
        sweeps over the same grid and seeds agree byte-for-byte.
        """
        payload = {
            key: outcome.to_dict()
            for key, outcome in sorted(self.outcomes.items())
        }
        return hashlib.sha256(_canonical(payload)).hexdigest()

    def to_dict(self) -> dict[str, object]:
        return {
            "base_seed": self.base_seed,
            "total_cells": self.total_cells,
            "completed_cells": len(self.outcomes),
            "resumed_cells": self.resumed_cells,
            "fingerprint": self.fingerprint(),
            "partial": None if self.partial is None else self.partial.as_dict(),
            "cells": {
                key: outcome.to_dict()
                for key, outcome in sorted(self.outcomes.items())
            },
        }


class SweepRunner:
    """Drives a grid of cells to completion, robustly.

    Cells fan out over a worker pool (``workers > 1``), every completed
    cell is checkpointed atomically, and a budget breach or a
    :meth:`request_stop` degrades to a partial :class:`SweepResult` at
    the next cell boundary instead of losing the sweep.
    """

    def __init__(
        self,
        cells: Iterable[SpectrumCell],
        *,
        base_seed: int = 0,
        workers: int = 1,
        checkpoint_path: str | None = None,
        max_seconds: float | None = None,
        max_memory_mb: float | None = None,
        throttle_s: float = 0.0,
    ):
        self.cells = list(cells)
        keys = [cell.key() for cell in self.cells]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate cell keys in sweep grid")
        if workers < 1:
            raise ValueError(f"need workers >= 1, got {workers}")
        self.base_seed = base_seed
        self.workers = workers
        self.checkpoint_path = checkpoint_path
        self.max_seconds = max_seconds
        self.max_memory_mb = max_memory_mb
        #: Parent-side sleep after each completed cell.  A testing /
        #: chaos knob: it widens the window in which a SIGKILL lands
        #: mid-sweep without changing any result byte.
        self.throttle_s = throttle_s
        self._stop_lock = threading.Lock()
        self._stop_reason: str | None = None

    # -- stop latch (sticky, thread-safe: the serve watchdog calls it) ----

    def request_stop(self, reason: str = "interrupt") -> None:
        with self._stop_lock:
            if self._stop_reason is None:
                self._stop_reason = reason

    @property
    def stop_reason(self) -> str | None:
        with self._stop_lock:
            return self._stop_reason

    # -- checkpointing -----------------------------------------------------

    def _load_checkpoint(self) -> dict[str, CellOutcome]:
        if not self.checkpoint_path or not os.path.exists(
            self.checkpoint_path
        ):
            return {}
        try:
            with open(self.checkpoint_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        if (
            data.get("version") != _CHECKPOINT_VERSION
            or data.get("kind") != "spectrum-sweep"
            or data.get("base_seed") != self.base_seed
        ):
            return {}
        valid_keys = {cell.key() for cell in self.cells}
        outcomes = {}
        for key, outcome_data in data.get("completed", {}).items():
            if key in valid_keys:
                outcomes[key] = CellOutcome.from_dict(outcome_data)
        return outcomes

    def _write_checkpoint(self, outcomes: Mapping[str, CellOutcome]) -> None:
        if not self.checkpoint_path:
            return
        payload = {
            "version": _CHECKPOINT_VERSION,
            "kind": "spectrum-sweep",
            "base_seed": self.base_seed,
            "grid": [cell.key() for cell in self.cells],
            "completed": {
                key: outcome.to_dict()
                for key, outcome in sorted(outcomes.items())
            },
        }
        tmp = f"{self.checkpoint_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)

    # -- execution ---------------------------------------------------------

    def run(self) -> SweepResult:
        guard = BudgetGuard(
            ResilienceConfig(
                wall_clock_limit_s=self.max_seconds,
                memory_limit_mb=self.max_memory_mb,
            )
        )
        outcomes = self._load_checkpoint()
        resumed = len(outcomes)
        pending = [
            cell for cell in self.cells if cell.key() not in outcomes
        ]

        stop_reason = self.stop_reason or guard.exceeded()
        if pending and stop_reason is None:
            if self.workers > 1:
                stop_reason = self._run_pool(pending, outcomes, guard)
            else:
                stop_reason = self._run_serial(pending, outcomes, guard)

        partial = None
        if len(outcomes) < len(self.cells):
            partial = PartialResult(
                reason=stop_reason or "interrupt",
                nodes=len(self.cells),
                expanded=len(outcomes),
                frontier=len(self.cells) - len(outcomes),
                elapsed_s=guard.elapsed(),
                checkpoint_path=self.checkpoint_path,
            )
        return SweepResult(
            outcomes=outcomes,
            total_cells=len(self.cells),
            base_seed=self.base_seed,
            resumed_cells=resumed,
            partial=partial,
        )

    def _should_stop(self, guard: BudgetGuard) -> str | None:
        return self.stop_reason or guard.exceeded()

    def _run_serial(
        self,
        pending: Sequence[SpectrumCell],
        outcomes: dict[str, CellOutcome],
        guard: BudgetGuard,
    ) -> str | None:
        for cell in pending:
            outcomes[cell.key()] = run_cell(cell, self.base_seed)
            self._write_checkpoint(outcomes)
            if self.throttle_s:
                time.sleep(self.throttle_s)
            reason = self._should_stop(guard)
            if reason is not None:
                return reason
        return None

    def _run_pool(
        self,
        pending: Sequence[SpectrumCell],
        outcomes: dict[str, CellOutcome],
        guard: BudgetGuard,
    ) -> str | None:
        payloads = [(cell.to_dict(), self.base_seed) for cell in pending]
        reason: str | None = None
        pool = multiprocessing.Pool(self.workers)
        try:
            for key, outcome_data in pool.imap_unordered(
                _cell_worker, payloads
            ):
                outcomes[key] = CellOutcome.from_dict(outcome_data)
                self._write_checkpoint(outcomes)
                if self.throttle_s:
                    time.sleep(self.throttle_s)
                reason = self._should_stop(guard)
                if reason is not None:
                    pool.terminate()
                    break
            else:
                pool.close()
        except Exception:
            pool.terminate()
            raise
        finally:
            pool.join()
        return reason


# ---------------------------------------------------------------------------
# Grids
# ---------------------------------------------------------------------------


def _benor_cell(
    n: int, f: int, grade: str, samples: int, horizon: int
) -> SpectrumCell:
    return SpectrumCell(
        protocol="benor",
        n=n,
        f=f,
        grade=grade,
        gst=None,
        samples=samples,
        horizon=horizon,
        drop_probability=0.5 if grade == "oblivious" else 1.0,
    )


def default_grid(
    benor_samples: int = 400, rotating_samples: int = 150
) -> list[SpectrumCell]:
    """The phase-diagram grid the benchmark records.

    The Ben-Or family spans the ``f < n/2`` boundary (f = 3 at n = 5 is
    the collapse side) under all three grades; the rotating family
    crosses finite GST against GST = ∞ under every detector class.
    """
    cells = [
        _benor_cell(5, f, grade, benor_samples, horizon=60)
        for f in (0, 1, 2, 3)
        for grade in ADVERSARY_GRADES
    ]
    for grade in ("oblivious", "adaptive"):
        for gst in (4, None):
            for detector in DETECTOR_CLASSES:
                cells.append(
                    SpectrumCell(
                        protocol="rotating",
                        n=5,
                        f=2,
                        grade=grade,
                        gst=gst,
                        detector=detector,
                        samples=rotating_samples,
                        horizon=30,
                        drop_probability=(
                            0.5 if grade == "oblivious" else 1.0
                        ),
                    )
                )
    return cells


def smoke_grid(
    benor_samples: int = 40, rotating_samples: int = 20
) -> list[SpectrumCell]:
    """A seconds-scale grid with the same headline cells, for CI/chaos."""
    cells = [
        _benor_cell(3, f, grade, benor_samples, horizon=40)
        for f in (0, 1)
        for grade in ("oblivious", "adaptive")
    ]
    for gst in (3, None):
        cells.append(
            SpectrumCell(
                protocol="rotating",
                n=3,
                f=1,
                grade="adaptive",
                gst=gst,
                samples=rotating_samples,
                horizon=12,
            )
        )
    return cells


# ---------------------------------------------------------------------------
# Phase-boundary expectations
# ---------------------------------------------------------------------------


def check_phase_expectations(result: SweepResult) -> list[str]:
    """The paper's predicted phase boundary, as checkable assertions.

    Returns a list of violation strings (empty = the diagram matches).
    Only completed cells are judged, so a partial sweep is checked for
    what it actually covered.
    """
    violations: list[str] = []
    by_key = {
        outcome.cell: outcome for outcome in result.outcomes.values()
    }

    for cell, outcome in by_key.items():
        if outcome.agreement_violations:
            violations.append(
                f"{cell.key()}: {outcome.agreement_violations} "
                "agreement violations"
            )
        if outcome.validity_violations:
            violations.append(
                f"{cell.key()}: {outcome.validity_violations} "
                "validity violations"
            )
        if (
            cell.protocol == "benor"
            and cell.grade == "oblivious"
            and cell.f < cell.n / 2
            and outcome.termination_rate < 1.0
        ):
            violations.append(
                f"{cell.key()}: Ben-Or must decide in every sampled run "
                f"for f < n/2 under the oblivious adversary; "
                f"terminated {outcome.terminated}/{cell.samples}"
            )
        if cell.protocol == "rotating" and cell.gst is not None:
            if outcome.terminated < cell.samples:
                violations.append(
                    f"{cell.key()}: rotating coordinator must decide "
                    f"after GST; terminated "
                    f"{outcome.terminated}/{cell.samples}"
                )
            elif (
                outcome.max_post_gst is not None
                and outcome.max_post_gst > cell.f + 1
            ):
                violations.append(
                    f"{cell.key()}: decided {outcome.max_post_gst} rounds "
                    f"post-GST, bound is f+1={cell.f + 1}"
                )
        if (
            cell.protocol == "rotating"
            and cell.gst is None
            and cell.grade == "adaptive"
            and cell.detector == "none"
            and outcome.terminated != 0
        ):
            violations.append(
                f"{cell.key()}: the GST=inf deterministic cell must "
                f"exhibit FLP nontermination; terminated "
                f"{outcome.terminated}/{cell.samples}"
            )

    # Degradation: the adaptive grade must be strictly worse than the
    # oblivious one somewhere in the nontrivial f < n/2 Ben-Or region.
    comparable: list[tuple[CellOutcome, CellOutcome]] = []
    for cell, outcome in by_key.items():
        if (
            cell.protocol != "benor"
            or cell.grade != "adaptive"
            or not 0 < cell.f < cell.n / 2
        ):
            continue
        twin = cell.to_dict()
        twin["grade"] = "oblivious"
        twin["drop_probability"] = 0.5
        sibling = by_key.get(SpectrumCell.from_dict(twin))
        if sibling is not None:
            comparable.append((outcome, sibling))
    if comparable:
        degraded = any(
            adaptive.termination_rate < oblivious.termination_rate
            or (
                adaptive.mean_rounds is not None
                and oblivious.mean_rounds is not None
                and adaptive.mean_rounds > oblivious.mean_rounds
            )
            for adaptive, oblivious in comparable
        )
        if not degraded:
            violations.append(
                "benor: the adaptive adversary shows no degradation over "
                "the oblivious one on any comparable f < n/2 cell"
            )
    return violations
