"""Pickle round-trips and cross-process hash stability.

The parallel frontier expansion ships configurations to worker
processes by pickle.  Two properties keep that sound:

* the round-trip is lossless — the unpickled value equals the original
  and behaves identically (same enabled events, same decision values);
* cached hashes are *recomputed* on the receiving side.  ``str`` (and
  generally object) hashes are salted per process by ``PYTHONHASHSEED``,
  so a naively pickled ``_hash`` slot would poison every dict and set
  the value touches in the other process.  Each core value type defines
  ``__reduce__`` to rebuild through ``__init__`` for exactly this
  reason, which the subprocess tests below pin down.
"""

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.core.configuration import Configuration
from repro.core.events import NULL, Event, Schedule
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState
from repro.core.values import UNDECIDED


def sample_buffer():
    return MessageBuffer.of(
        [
            Message("p0", ("vote", 1)),
            Message("p0", ("vote", 1)),  # multiplicity 2
            Message("p2", "ping"),
        ]
    )


def sample_configuration():
    states = {
        "p0": ProcessState(0, UNDECIDED, ("fresh",)),
        "p1": ProcessState(1, 1, ("decided", 3)),
        "p2": ProcessState(1, UNDECIDED, ()),
    }
    return Configuration(states, sample_buffer())


SAMPLES = {
    "message": Message("p1", ("echo", 2)),
    "buffer": sample_buffer(),
    "state": ProcessState(1, 1, ("decided", 3)),
    "event": Event("p0", ("vote", 1)),
    "null_event": Event("p2", NULL),
    "configuration": sample_configuration(),
}


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SAMPLES))
    def test_equal_after_round_trip(self, name):
        original = SAMPLES[name]
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        assert hash(clone) == hash(original)

    @pytest.mark.parametrize("name", sorted(SAMPLES))
    def test_usable_as_dict_key(self, name):
        original = SAMPLES[name]
        clone = pickle.loads(pickle.dumps(original))
        assert {original: "x"}[clone] == "x"
        assert len({original, clone}) == 1

    def test_buffer_multiset_preserved(self):
        clone = pickle.loads(pickle.dumps(sample_buffer()))
        assert clone.count(Message("p0", ("vote", 1))) == 2
        assert len(clone) == 3
        assert clone.distinct_messages() == sample_buffer().distinct_messages()

    def test_configuration_behaviour_preserved(self):
        original = sample_configuration()
        clone = pickle.loads(pickle.dumps(original))
        assert clone.process_names == original.process_names
        assert clone.decision_values() == original.decision_values()
        assert clone.buffer == original.buffer

    def test_schedule_round_trip(self):
        schedule = Schedule(
            (Event("p0", NULL), Event("p1", ("vote", 1)))
        )
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule

    def test_frozen_after_round_trip(self):
        clone = pickle.loads(pickle.dumps(SAMPLES["message"]))
        with pytest.raises(AttributeError):
            clone.destination = "p9"


# Script run in a subprocess under a *different* PYTHONHASHSEED: builds
# the same sample values and pickles them to the path in argv[1].
_CHILD = textwrap.dedent(
    """
    import pickle, sys
    from tests.core.test_pickling import SAMPLES
    with open(sys.argv[1], "wb") as fh:
        pickle.dump(SAMPLES, fh)
    """
)


def _dump_in_subprocess(tmp_path, seed):
    out = tmp_path / f"samples_{seed}.pickle"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src"), repo_root]
    )
    subprocess.run(
        [sys.executable, "-c", _CHILD, str(out)],
        check=True,
        env=env,
        cwd=repo_root,
    )
    with open(out, "rb") as fh:
        return pickle.load(fh)


class TestCrossProcessHashStability:
    def test_values_pickled_under_other_seeds_compare_equal(self, tmp_path):
        for seed in ("0", "4242"):
            loaded = _dump_in_subprocess(tmp_path, seed)
            assert set(loaded) == set(SAMPLES)
            for name, original in SAMPLES.items():
                clone = loaded[name]
                # Equality must hold, and the cached hash must have been
                # recomputed under THIS interpreter's seed — a pickled
                # hash from the child would (almost surely) differ.
                assert clone == original, name
                assert hash(clone) == hash(original), name
                assert clone in {original}, name
