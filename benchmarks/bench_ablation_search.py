"""Bench A1 — ablation: cost of the Lemma-3 search per stage."""


def test_a1_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "A1")
    big_budget = [row for row in result.rows if row["budget"] >= 100_000]
    assert big_budget
    for row in big_budget:
        assert row["outcome"] != "stuck (budget too small)"
