"""Shared protocol instances for the experiment suite.

Centralizing the instances keeps experiment tables comparable: every
experiment that says "arbiter/3" means exactly the same protocol object
shape, and the quick/full switch scales N in one place.
"""

from __future__ import annotations

from repro.core.protocol import Protocol
from repro.protocols import (
    ArbiterProcess,
    InitiallyDeadProcess,
    InputEchoProcess,
    ParityArbiterProcess,
    QuorumVoteProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)

__all__ = [
    "safe_zoo",
    "bivalent_zoo",
    "broken_zoo",
    "commit_zoo",
]


def safe_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """Partially correct asynchronous protocols — Theorem 1's subjects."""
    members = [
        ("arbiter/3", make_protocol(ArbiterProcess, 3)),
        ("parity-arbiter/3", make_protocol(ParityArbiterProcess, 3)),
        ("wait-for-all/3", make_protocol(WaitForAllProcess, 3)),
        ("2pc/3", make_protocol(TwoPhaseCommitProcess, 3)),
        ("3pc/3", make_protocol(ThreePhaseCommitProcess, 3)),
    ]
    if not quick:
        members.extend(
            [
                ("arbiter/4", make_protocol(ArbiterProcess, 4)),
                ("2pc/4", make_protocol(TwoPhaseCommitProcess, 4)),
                # Theorem 2's own protocol is finite-state at N=3 and,
                # like everything else, falls to Theorem 1: its stage-1
                # hearing order makes initial configurations bivalent,
                # and the fault mode is exactly a "death during
                # execution", which Section 4's hypotheses exclude.
                (
                    "initially-dead/3",
                    make_protocol(InitiallyDeadProcess, 3),
                ),
            ]
        )
    return members


def bivalent_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """Safe protocols that actually have bivalent initial configurations
    (order-sensitive decisions) — Lemma 3's subjects."""
    members = [
        ("arbiter/3", make_protocol(ArbiterProcess, 3)),
        ("parity-arbiter/3", make_protocol(ParityArbiterProcess, 3)),
    ]
    if not quick:
        members.extend(
            [
                ("arbiter/4", make_protocol(ArbiterProcess, 4)),
                ("parity-arbiter/4", make_protocol(ParityArbiterProcess, 4)),
            ]
        )
    return members


def broken_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """Protocols that fail partial correctness — negative controls."""
    return [
        ("quorum-vote/3", make_protocol(QuorumVoteProcess, 3)),
        ("input-echo/2", make_protocol(InputEchoProcess, 2)),
    ]


def commit_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """The introduction's transaction-commit protocols."""
    n = 3 if quick else 4
    return [
        (f"2pc/{n}", make_protocol(TwoPhaseCommitProcess, n)),
        (f"3pc/{n}", make_protocol(ThreePhaseCommitProcess, n)),
    ]
