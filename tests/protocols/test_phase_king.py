"""Tests for phase-king consensus under Byzantine faults."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.exp_synchronous import phase_king_trial
from repro.protocols import ByzantineProcess, PhaseKingProcess
from repro.synchrony import run_rounds

NAMES9 = tuple(f"p{i}" for i in range(9))


class TestParameters:
    def test_requires_n_over_4f(self):
        with pytest.raises(ValueError, match="N > 4f"):
            PhaseKingProcess("p0", NAMES9, f=3)  # 9 > 12 is false
        PhaseKingProcess("p0", NAMES9, f=2)  # fine

    def test_round_bookkeeping(self):
        process = PhaseKingProcess("p0", NAMES9, f=2)
        assert process.total_rounds == 6
        assert process.phase_of(1) == 1 and process.phase_of(2) == 1
        assert process.phase_of(3) == 2
        assert process.is_round_a(1) and not process.is_round_a(2)
        assert process.king_of(1) == "p0"
        assert process.king_of(3) == "p2"


class TestFaultFree:
    def test_unanimous(self):
        for value in (0, 1):
            processes = [
                PhaseKingProcess(name, NAMES9, f=2) for name in NAMES9
            ]
            result = run_rounds(
                processes, {name: value for name in NAMES9}, max_rounds=6
            )
            assert result.decision_values == frozenset({value})
            assert result.all_live_decided

    def test_decides_in_two_f_plus_one_rounds(self):
        processes = [
            PhaseKingProcess(name, NAMES9, f=2) for name in NAMES9
        ]
        result = run_rounds(
            processes,
            {name: i % 2 for i, name in enumerate(NAMES9)},
            max_rounds=10,
        )
        assert set(result.decision_rounds.values()) == {6}

    def test_mixed_inputs_agree(self):
        processes = [
            PhaseKingProcess(name, NAMES9, f=2) for name in NAMES9
        ]
        result = run_rounds(
            processes,
            {name: i % 2 for i, name in enumerate(NAMES9)},
            max_rounds=6,
        )
        assert result.agreement_holds
        assert result.all_live_decided


class TestByzantine:
    def test_byzantine_king_cannot_split_honest(self):
        # The round-1 king (p0) is Byzantine: honest processes may adopt
        # different fake king values in phase 1, but a later honest
        # king repairs it.
        result = phase_king_trial(
            9,
            2,
            byzantine={"p0"},
            inputs={name: i % 2 for i, name in enumerate(NAMES9)},
            seed=3,
        )
        honest = [name for name in NAMES9 if name != "p0"]
        decisions = {name: result.decisions[name] for name in honest}
        assert len(set(decisions.values())) == 1

    def test_byzantine_minority_cannot_break_validity(self):
        # All honest processes hold 0; two liars push 1.
        inputs = {name: 0 for name in NAMES9}
        result = phase_king_trial(
            9, 2, byzantine={"p3", "p7"}, inputs=inputs, seed=5
        )
        honest = [name for name in NAMES9 if name not in ("p3", "p7")]
        assert all(result.decisions[name] == 0 for name in honest)

    def test_byzantine_process_never_decides(self):
        result = phase_king_trial(
            5,
            1,
            byzantine={"p2"},
            inputs={f"p{i}": 1 for i in range(5)},
            seed=1,
        )
        assert "p2" not in result.decisions

    def test_equivocation_is_real(self):
        liar = ByzantineProcess("x", ("x", "y", "z"), seed=0)
        messages = {
            liar.outgoing_to((), round_number, receiver)
            for round_number in range(6)
            for receiver in ("y", "z")
        }
        assert len(messages) > 1  # tells different stories


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_honest_agreement_and_validity_property(seed):
    rng = random.Random(seed)
    n, f = rng.choice([(5, 1), (9, 2), (13, 3)])
    names = tuple(f"p{i}" for i in range(n))
    byzantine = set(rng.sample(list(names), rng.randint(0, f)))
    inputs = {name: rng.randint(0, 1) for name in names}
    result = phase_king_trial(n, f, byzantine, inputs, seed=seed)
    honest = [name for name in names if name not in byzantine]
    decisions = {name: result.decisions[name] for name in honest}
    assert len(decisions) == len(honest)  # all honest decide
    assert len(set(decisions.values())) == 1  # and agree
    honest_inputs = {inputs[name] for name in honest}
    if len(honest_inputs) == 1:  # honest unanimity is honored
        assert set(decisions.values()) == honest_inputs
