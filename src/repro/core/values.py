"""Binary consensus values and the undecided output marker.

The paper's processes carry a one-bit input register ``x_p`` with values in
``{0, 1}`` and an output register ``y_p`` with values in ``{b, 0, 1}``
where ``b`` is a distinguished "blank" marker meaning *no decision yet*.
This module pins those down as constants and provides small helpers used
throughout the library.
"""

from __future__ import annotations

from typing import Iterable

#: The two possible consensus decisions.
ZERO = 0
ONE = 1

#: All valid decision values, in canonical order.
DECISION_VALUES = (ZERO, ONE)

#: The blank output-register marker ``b``: the process has not decided.
UNDECIDED = None


def is_decision_value(value: object) -> bool:
    """Return ``True`` iff *value* is a legal decision value (0 or 1)."""
    return value is not UNDECIDED and value in DECISION_VALUES


def is_input_value(value: object) -> bool:
    """Return ``True`` iff *value* is a legal input-register value."""
    return value in DECISION_VALUES


def validate_input_vector(inputs: Iterable[int]) -> tuple[int, ...]:
    """Normalize and validate a vector of initial input values.

    Parameters
    ----------
    inputs:
        One initial value per process, each in ``{0, 1}``.

    Returns
    -------
    tuple[int, ...]
        The inputs as an immutable tuple.

    Raises
    ------
    ValueError
        If any entry is not a legal input value.
    """
    vector = tuple(inputs)
    for index, value in enumerate(vector):
        if not is_input_value(value):
            raise ValueError(
                f"input register x_{index} must be 0 or 1, got {value!r}"
            )
    return vector


def opposite(value: int) -> int:
    """Return the other binary value: ``opposite(0) == 1`` and vice versa."""
    if value == ZERO:
        return ONE
    if value == ONE:
        return ZERO
    raise ValueError(f"not a binary consensus value: {value!r}")
