"""Batched transition kernel: parity with scalar ``step()``, everywhere.

The kernel is a performance feature with a one-line correctness
contract: every graph it produces is byte-identical (same packed
tuples under the same ids, same edges in the same order — the
``fingerprint()`` invariant) to the one the scalar per-configuration
path produces.  These tests pin that contract across the protocol zoo,
both engines' id spaces, fault wrappers, the reducers, the worker
pool, and checkpoint/resume — including resumes that cross the
kernel/scalar boundary in either direction mid-table-build.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.reduction import ReductionPolicy
from repro.faults.model import FaultedProtocol
from repro.faults.plan import Crash, FaultPlan, Omission
from repro.protocols import (
    ArbiterProcess,
    BenOrProcess,
    ParityArbiterProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)

#: The parity zoo: (factory, budget).  ``None`` = explore to closure.
#: Budgets keep the hypothesis suite fast while still crossing table
#: growth boundaries (each instance interns hundreds of states).
_ZOO = [
    (lambda: make_protocol(ArbiterProcess, 3), None),
    (lambda: make_protocol(ParityArbiterProcess, 3), None),
    (lambda: make_protocol(WaitForAllProcess, 3), 800),
    (lambda: make_protocol(TwoPhaseCommitProcess, 3), 800),
    (lambda: make_protocol(BenOrProcess, 3), 800),
]


def _explore(protocol, root, *, budget, kernel, **kwargs):
    graph = GlobalConfigurationGraph(protocol, kernel=kernel, **kwargs)
    try:
        graph.explore(
            root,
            **({} if budget is None else {"max_configurations": budget}),
        )
        return graph.fingerprint(), len(graph), graph
    finally:
        graph.close()


class TestScalarParity:
    """Kernel-expanded successor sets == scalar ``step()`` sets.

    The fingerprint hashes every packed node and its successor list in
    id order, so fingerprint identity *is* successor-set identity plus
    interning-order identity — the strongest form of the claim.
    """

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_kernel_matches_scalar_across_zoo(self, seed):
        rng = random.Random(seed)
        factory, budget = rng.choice(_ZOO)
        protocol = factory()
        n = len(protocol.process_names)
        inputs = [rng.randint(0, 1) for _ in range(n)]
        root = protocol.initial_configuration(inputs)
        scalar_fp, scalar_n, _ = _explore(
            protocol, root, budget=budget, kernel=False
        )
        kernel_fp, kernel_n, _ = _explore(
            protocol, root, budget=budget, kernel=True
        )
        assert kernel_n == scalar_n
        assert kernel_fp == scalar_fp

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_kernel_graph_matches_dict_engine_successors(self, seed):
        """Cross-engine: the kernel's packed graph decodes to the same
        configurations with the same successor structure as the
        dict-backed engine (ids are first-seen-order in both)."""
        rng = random.Random(seed)
        factory, budget = rng.choice(_ZOO[:2])  # closed instances only
        protocol = factory()
        inputs = [rng.randint(0, 1) for _ in range(3)]
        root = protocol.initial_configuration(inputs)
        _, _, kernel_graph = _explore(
            protocol, root, budget=budget, kernel=True
        )
        dict_graph = GlobalConfigurationGraph(protocol, packed=False)
        dict_graph.explore(root)
        assert len(kernel_graph) == len(dict_graph)
        assert kernel_graph.successors == dict_graph.successors
        for node in range(len(dict_graph)):
            assert (
                kernel_graph.configuration_at(node)
                == dict_graph.configuration_at(node)
            )

    def test_faulted_protocol_parity(self):
        """Drop pseudo-events and dead-process filtering go through the
        kernel's tables too — faulted graphs stay byte-identical."""
        base = make_protocol(BenOrProcess, 3)
        plan = FaultPlan(
            [Crash("p0", 0), Omission(destination="p2", budget=None)]
        )

        def faulted():
            return FaultedProtocol(make_protocol(BenOrProcess, 3), plan)

        root_inputs = [0, 1, 1]
        fps = {}
        for kernel in (False, True):
            protocol = faulted()
            root = protocol.initial_configuration(root_inputs)
            fps[kernel], _, graph = _explore(
                protocol, root, budget=2000, kernel=kernel
            )
            # The fault fragment must actually shape the graph for this
            # test to mean anything.
            assert protocol.fault_counters.drop_edges > 0
            assert protocol.fault_counters.dead_exclusions > 0
        assert fps[True] == fps[False]
        del base


class TestReducerParity:
    def test_por_parity(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 1])
        fps = {
            kernel: _explore(
                arbiter3,
                root,
                budget=None,
                kernel=kernel,
                reduction=ReductionPolicy(por=True),
            )[0]
            for kernel in (False, True)
        }
        assert fps[True] == fps[False]

    @pytest.mark.parametrize(
        "policy",
        [
            ReductionPolicy(symmetry=True),
            ReductionPolicy(por=True, symmetry=True),
        ],
        ids=["symmetry", "por+symmetry"],
    )
    def test_symmetry_parity(self, policy):
        protocol = make_protocol(BenOrProcess, 3, coin="round")
        root = protocol.initial_configuration([0, 0, 1])
        fps = {
            kernel: _explore(
                protocol, root, budget=2000, kernel=kernel,
                reduction=policy,
            )[0]
            for kernel in (False, True)
        }
        assert fps[True] == fps[False]


class TestParallelParity:
    """The acceptance pin: serial, parallel, resumed, and reduced runs
    all produce the same bytes with the kernel enabled."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_serial_kernel(self, parity_arbiter3, workers):
        root = parity_arbiter3.initial_configuration([0, 0, 1])
        serial_fp, _, _ = _explore(
            parity_arbiter3, root, budget=None, kernel=True
        )
        parallel_fp, _, _ = _explore(
            parity_arbiter3, root, budget=None, kernel=True,
            workers=workers,
        )
        assert parallel_fp == serial_fp

    def test_parallel_scalar_and_kernel_agree(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 1])
        fps = {
            kernel: _explore(
                arbiter3, root, budget=None, kernel=kernel, workers=2
            )[0]
            for kernel in (False, True)
        }
        assert fps[True] == fps[False]


class TestCheckpointResume:
    def _uninterrupted(self, protocol, root, budget, kernel=True):
        fp, _, _ = _explore(protocol, root, budget=budget, kernel=kernel)
        return fp

    def _partial(self, protocol, root, tmp_path, *, kernel, budget=150):
        graph = GlobalConfigurationGraph(protocol, kernel=kernel)
        graph.explore(root, max_configurations=budget)
        path = str(tmp_path / "partial.ckpt")
        save_checkpoint(graph, path)
        graph.close()
        return path

    def test_resume_mid_table_build(self, protocol_parity3, tmp_path):
        """A checkpoint taken while the step tables are half-filled
        restores table bytes and placeholder buffer reps, and the
        resumed run finishes byte-identical to an uninterrupted one."""
        protocol = protocol_parity3
        root = protocol.initial_configuration([0, 0, 1])
        clean = self._uninterrupted(protocol, root, 5000)
        path = self._partial(protocol, root, tmp_path, kernel=True)
        resumed = load_checkpoint(path, protocol)
        assert resumed.kernel is not None
        # The snapshot restored real table state, not a cold kernel.
        assert resumed.kernel.table_bytes > 0
        resumed.explore(root, max_configurations=5000)
        assert resumed.fingerprint() == clean

    def test_kernel_checkpoint_resumes_on_scalar_engine(
        self, protocol_parity3, tmp_path
    ):
        """kernel -> scalar: placeholder buffers materialize from the
        snapshot's flat reps and the scalar run continues identically."""
        protocol = protocol_parity3
        root = protocol.initial_configuration([0, 0, 1])
        clean = self._uninterrupted(protocol, root, 5000, kernel=False)
        path = self._partial(protocol, root, tmp_path, kernel=True)
        resumed = load_checkpoint(path, protocol, kernel=False)
        assert resumed.kernel is None
        resumed.explore(root, max_configurations=5000)
        assert resumed.fingerprint() == clean

    def test_scalar_checkpoint_resumes_on_kernel_engine(
        self, protocol_parity3, tmp_path
    ):
        """scalar -> kernel: the fresh kernel reindexes the restored
        codec (every buffer gets a rep) before its first batch."""
        protocol = protocol_parity3
        root = protocol.initial_configuration([0, 0, 1])
        clean = self._uninterrupted(protocol, root, 5000)
        path = self._partial(protocol, root, tmp_path, kernel=False)
        resumed = load_checkpoint(path, protocol, kernel=True)
        assert resumed.kernel is not None
        resumed.explore(root, max_configurations=5000)
        assert resumed.fingerprint() == clean

    @pytest.fixture()
    def protocol_parity3(self):
        return make_protocol(ParityArbiterProcess, 3)


class TestObservability:
    def test_kernel_counters_move(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 1])
        graph = GlobalConfigurationGraph(arbiter3, kernel=True)
        graph.explore(root)
        stats = graph.stats
        assert stats.kernel_batch_expansions > 0
        assert stats.kernel_table_hits > 0
        assert stats.kernel_fallback_steps > 0
        assert stats.kernel_table_bytes > 0
        as_dict = stats.as_dict()
        for key in (
            "kernel_batch_expansions",
            "kernel_table_hits",
            "kernel_fallback_steps",
            "kernel_table_bytes",
        ):
            assert key in as_dict

    def test_no_kernel_leaves_counters_zero(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 1])
        graph = GlobalConfigurationGraph(arbiter3, kernel=False)
        graph.explore(root)
        assert graph.kernel is None
        assert graph.stats.kernel_batch_expansions == 0
        assert graph.stats.kernel_table_bytes == 0
