"""Phase King: synchronous consensus under BYZANTINE faults.

The abstract's contrast is specifically "the Byzantine Generals
problem" — consensus when faulty processes may "go completely haywire,
perhaps even sending messages according to some malevolent plan."  This
module supplies that contrast with the Berman–Garay *phase king*
algorithm (the simple N > 4f variant) plus a Byzantine process model
for the round-synchronous executor.

The algorithm runs ``f + 1`` phases of two rounds each:

* **round A** — everyone broadcasts its current value; each process
  tallies the received values (its own included) and records the
  majority value ``m`` and its count ``c``;
* **round B** — the phase's *king* (process ``peers[phase-1]``)
  broadcasts its ``m``; a process keeps its own ``m`` if its count was
  overwhelming (``c > N/2 + f`` — too strong for f liars to have
  manufactured), otherwise it adopts the king's value (or a default if
  the king said nothing — kings can be Byzantine too).

After phase ``f + 1`` every process decides its current value.  With
``N > 4f`` and at most ``f`` Byzantine processes: some phase has an
honest king; after that phase all honest processes hold the same value,
and unanimity, once reached, is never broken (an overwhelming count in
every later round A).  Validity: if all honest processes start with
``w``, every honest tally has ``c ≥ N - f > N/2 + f``, so nobody ever
adopts a king's value.

:class:`ByzantineProcess` is the adversary's puppet: it equivocates —
each (receiver, round) gets an independently seeded arbitrary bit — and
never decides.  Crash faults are a special case (Byzantine ⊇ crash), so
this strictly strengthens the E8 contrast: even against *lying*
processes, synchrony buys what FLP proves asynchrony cannot, and it
needs only silence to fail.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Mapping

from repro.synchrony.rounds import SyncProcess

__all__ = ["PhaseKingProcess", "ByzantineProcess"]


class PhaseKingProcess(SyncProcess):
    """One honest process of phase-king consensus (``N > 4f``)."""

    def __init__(self, name: str, peers, f: int, default: int = 1):
        super().__init__(name, peers)
        if not 0 <= f * 4 < self.n:
            raise ValueError(
                f"phase king (simple variant) requires N > 4f; "
                f"N={self.n}, got f={f}"
            )
        self.f = f
        self.default = default

    # -- round bookkeeping ----------------------------------------------------

    @property
    def total_rounds(self) -> int:
        return 2 * (self.f + 1)

    def phase_of(self, round_number: int) -> int:
        return (round_number + 1) // 2

    def is_round_a(self, round_number: int) -> bool:
        return round_number % 2 == 1

    def king_of(self, phase: int) -> str:
        return self.peers[phase - 1]

    # -- SyncProcess hooks -------------------------------------------------------

    def initial_state(self, input_value: int) -> Hashable:
        # (current value, stored majority m, stored count c)
        return (input_value, input_value, 0)

    def outgoing(self, state: Hashable, round_number: int) -> Hashable:
        value, majority, _count = state
        if self.is_round_a(round_number):
            return ("value", value)
        if self.name == self.king_of(self.phase_of(round_number)):
            return ("king", majority)
        return None  # Non-kings are silent in round B.

    def update(
        self,
        state: Hashable,
        round_number: int,
        received: Mapping[str, Hashable],
    ) -> Hashable:
        value, majority, count = state
        if self.is_round_a(round_number):
            votes = [value]  # own vote counts
            for payload in received.values():
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "value"
                    and payload[1] in (0, 1)
                ):
                    votes.append(payload[1])
            ones = sum(votes)
            zeros = len(votes) - ones
            if ones >= zeros:
                majority, count = 1, ones
            else:
                majority, count = 0, zeros
            return (value, majority, count)

        # Round B: keep an overwhelming majority, else trust the king.
        king = self.king_of(self.phase_of(round_number))
        if count > self.n / 2 + self.f:
            value = majority
        else:
            payload = received.get(king)
            if self.name == king:
                value = majority  # the king trusts itself
            elif (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "king"
                and payload[1] in (0, 1)
            ):
                value = payload[1]
            else:
                value = self.default  # silent or garbage king
        return (value, majority, count)

    def decision(self, state: Hashable, round_number: int) -> int | None:
        if round_number < self.total_rounds:
            return None
        return state[0]


class ByzantineProcess(SyncProcess):
    """A malevolent process: equivocates arbitrarily, never decides.

    Each ``(receiver, round)`` pair gets an independently seeded
    message — sometimes a well-formed vote, sometimes a fake king
    claim, sometimes garbage, sometimes silence — the strongest
    behaviour the phase-king analysis must survive.
    """

    def __init__(self, name: str, peers, seed: int = 0):
        super().__init__(name, peers)
        self.seed = seed

    def initial_state(self, input_value: int) -> Hashable:
        return ()

    def outgoing(self, state: Hashable, round_number: int) -> Hashable:
        return None  # Unused: outgoing_to does the lying.

    def outgoing_to(
        self, state: Hashable, round_number: int, receiver: str
    ) -> Hashable:
        digest = hashlib.sha256(
            f"{self.seed}:{self.name}:{round_number}:{receiver}".encode()
        ).digest()
        choice = digest[0] % 4
        bit = digest[1] & 1
        if choice == 0:
            return ("value", bit)
        if choice == 1:
            return ("king", bit)
        if choice == 2:
            return ("garbage", digest[2])
        return None  # Sometimes silence is the sharpest lie.

    def update(
        self,
        state: Hashable,
        round_number: int,
        received: Mapping[str, Hashable],
    ) -> Hashable:
        return state

    def decision(self, state: Hashable, round_number: int) -> int | None:
        return None
