"""Schedulers: explicit realizations of the model's nondeterminism.

A scheduler chooses, step by step, which process moves and which pending
message (if any) it receives.  The library ships a fair round-robin
scheduler (the benign network), a seeded random scheduler (the
unpredictable network), a delay scheduler (the window-of-vulnerability
attack), and crash-plan helpers.  The FLP adversary lives in
:mod:`repro.adversary` because it needs valency analysis, not just the
scheduler interface.
"""

from repro.schedulers.base import CrashPlan, FifoTracker, Scheduler
from repro.schedulers.crash import (
    initially_dead_plans,
    random_crash_plan,
    single_crash_plans,
)
from repro.schedulers.faulty import FaultyScheduler
from repro.schedulers.partitioner import DelayScheduler
from repro.schedulers.random_scheduler import RandomScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.scripted import ScriptedScheduler

__all__ = [
    "CrashPlan",
    "FifoTracker",
    "Scheduler",
    "initially_dead_plans",
    "random_crash_plan",
    "single_crash_plans",
    "DelayScheduler",
    "FaultyScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
]
