"""Smoke tests: every shipped example runs to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _example_env() -> dict[str, str]:
    """Subprocess environment with ``repro`` importable from src/.

    The examples run from a scratch cwd, so they only find the package
    if PYTHONPATH carries it (any pre-existing PYTHONPATH is preserved).
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3
    assert any(path.name == "quickstart.py" for path in EXAMPLES)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_cleanly(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=tmp_path,  # examples must not depend on the repo cwd
        env=_example_env(),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate something"
