"""Valency: the decision values reachable from a configuration.

"Let C be a configuration and let V be the set of decision values of
configurations reachable from C.  C is *bivalent* if |V| = 2, *univalent*
if |V| = 1 — 0-valent or 1-valent according to the corresponding decision
value." (paper, Section 3)

For finite protocol instances valency is computable: build the reachable
graph and take reverse reachability from decision configurations.  For
bounded explorations the analyzer returns sound answers where the budget
permits and an explicit :attr:`Valency.UNKNOWN` otherwise — never a
silent guess.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.exploration import (
    DEFAULT_MAX_CONFIGURATIONS,
    ConfigurationGraph,
    GlobalConfigurationGraph,
    GraphStats,
    TransitionCache,
)
from repro.core.protocol import Protocol
from repro.core.values import ONE, ZERO

__all__ = [
    "Valency",
    "ValencyAnalyzer",
    "BivalenceWitness",
    "shortest_schedule",
]


class Valency(enum.Enum):
    """Classification of a configuration by its reachable decision set V."""

    #: V = {0}: every reachable decision is 0.
    ZERO_VALENT = "0-valent"
    #: V = {1}: every reachable decision is 1.
    ONE_VALENT = "1-valent"
    #: V = {0, 1}: both decisions remain reachable.
    BIVALENT = "bivalent"
    #: V = ∅: no decision is reachable at all.  Cannot occur in a totally
    #: correct protocol ("by the total correctness of P ... V ≠ ∅") but
    #: the analyzer must be honest about protocols that are not.
    NONE = "non-deciding"
    #: The exploration budget was insufficient to determine V.
    UNKNOWN = "unknown"

    @property
    def is_univalent(self) -> bool:
        return self in (Valency.ZERO_VALENT, Valency.ONE_VALENT)

    @property
    def decided_value(self) -> int | None:
        """The forced decision value for univalent classes, else ``None``."""
        if self is Valency.ZERO_VALENT:
            return ZERO
        if self is Valency.ONE_VALENT:
            return ONE
        return None

    @classmethod
    def of_values(cls, values: frozenset[int]) -> "Valency":
        """Classify an exactly-known decision-value set."""
        if values == frozenset((ZERO, ONE)):
            return cls.BIVALENT
        if values == frozenset((ZERO,)):
            return cls.ZERO_VALENT
        if values == frozenset((ONE,)):
            return cls.ONE_VALENT
        if not values:
            return cls.NONE
        raise ValueError(f"not a binary decision-value set: {values!r}")


@dataclass(frozen=True)
class BivalenceWitness:
    """Machine-checkable evidence that a configuration is bivalent.

    ``to_zero`` applied to ``configuration`` reaches a configuration with
    decision value 0; ``to_one`` likewise for 1.  ``verify`` replays both
    schedules through the protocol semantics.
    """

    configuration: Configuration
    to_zero: Schedule
    to_one: Schedule

    def verify(self, protocol: Protocol) -> bool:
        """Re-run both witness schedules and check the decisions."""
        zero_end = protocol.apply_schedule(self.configuration, self.to_zero)
        one_end = protocol.apply_schedule(self.configuration, self.to_one)
        return (
            ZERO in zero_end.decision_values()
            and ONE in one_end.decision_values()
        )


def shortest_schedule(
    graph: ConfigurationGraph | GlobalConfigurationGraph,
    source: int,
    targets: set[int],
) -> Schedule | None:
    """Shortest event path in *graph* from node *source* into *targets*.

    Returns ``None`` when no target is reachable from *source* inside the
    explored portion of the graph.
    """
    if source in targets:
        return Schedule()
    parents: dict[int, tuple[int, Event]] = {}
    queue: deque[int] = deque([source])
    seen = {source}
    while queue:
        node = queue.popleft()
        for event, successor in graph.successors[node]:
            if successor in seen:
                continue
            parents[successor] = (node, event)
            if successor in targets:
                events: list[Event] = []
                current = successor
                while current != source:
                    parent, via = parents[current]
                    events.append(via)
                    current = parent
                events.reverse()
                return Schedule(events)
            seen.add(successor)
            queue.append(successor)
    return None


class ValencyAnalyzer:
    """Computes and caches valencies for one protocol.

    The analyzer owns one :class:`GlobalConfigurationGraph` and
    classifies it *incrementally*: the first query from a configuration
    grows the shared graph to cover that configuration's forward
    closure, then one reverse-reachability pass (flat bitset maps over
    CSR adjacency) classifies every node whose valency is pinned down
    soundly.  Any later query whose configuration lies in the
    already-classified region — including every
    :meth:`bivalence_witness` lookup — is a pure cache hit: no second
    exploration, no per-root graph rebuild.

    Classification is monotone-sound across growth: an expanded node's
    forward closure never changes (expansion records the complete
    successor set), so a valency assigned once stays valid as new roots
    extend the graph.

    Parameters
    ----------
    protocol:
        The protocol whose semantics define reachability.
    max_configurations:
        Budget on the total number of interned configurations.  Larger
        state spaces produce sound answers where reverse reachability
        from decisions can be separated from the unexplored frontier,
        and :attr:`Valency.UNKNOWN` elsewhere; raising the budget later
        resumes exploration from the recorded frontier.
    packed:
        Key the shared graph by the packed integer encoding (default;
        see :mod:`repro.core.packing`).  ``False`` keeps the dict-backed
        baseline engine.
    workers:
        Opt-in ``multiprocessing`` pool size for frontier expansion
        (0/1 = serial).  Results are byte-identical to a serial run; the
        pool is shut down via :meth:`close` or engine finalization.
    resilience:
        Worker-recovery and budget-guard policy for the shared engine
        (see :class:`~repro.core.resilience.ResilienceConfig`).
    checkpoint:
        Snapshot cadence for the shared engine (see
        :class:`~repro.core.resilience.CheckpointConfig`).
    resume_from:
        Path of a checkpoint to restore the shared graph from before
        any query runs.  The snapshot decides the engine mode (*packed*
        is ignored) and the reduction policy (unless *reduction*
        overrides it), and valencies are reclassified from the restored
        graph on first query — classification state is derived, not
        checkpointed.
    reduction:
        Optional :class:`~repro.core.reduction.ReductionPolicy` for the
        shared engine (Lemma-1 ample sets / symmetry quotient).  Every
        valency verdict is identical to the unreduced graph's — that is
        the reduction's soundness contract, pinned by the zoo-wide
        property tests — and :meth:`bivalence_witness` works under the
        quotient too: every orbit edge records the renaming it applied,
        so a quotient path is *un-quotiented* back into a concrete
        schedule by composing the recorded renamings out (see
        :meth:`_unquotient_schedule`).
    """

    def __init__(
        self,
        protocol: Protocol,
        max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
        *,
        packed: bool = True,
        workers: int = 0,
        resilience=None,
        checkpoint=None,
        resume_from: str | None = None,
        reduction=None,
        store=None,
        kernel: bool = True,
    ):
        self.protocol = protocol
        self.max_configurations = max_configurations
        #: Shared transition memo; the adversary's searches reuse it.
        self.transitions = TransitionCache(protocol)
        #: The one shared accessible-configuration graph.
        if resume_from is not None:
            from repro.core.checkpoint import load_checkpoint

            self.graph = load_checkpoint(
                resume_from,
                protocol,
                workers=workers,
                transitions=self.transitions,
                resilience=resilience,
                checkpoint=checkpoint,
                reduction=reduction,
                store=store,
                kernel=kernel,
            )
        else:
            self.graph = GlobalConfigurationGraph(
                protocol,
                self.transitions,
                packed=packed,
                workers=workers,
                resilience=resilience,
                checkpoint=checkpoint,
                reduction=reduction,
                store=store,
                kernel=kernel,
            )
        #: Valency per node id; ``None`` = not (yet) soundly determined.
        self._node_valency: list[Valency | None] = []

    def close(self) -> None:
        """Release the engine's worker pool (no-op for serial engines)."""
        self.graph.close()

    @property
    def configurations_explored(self) -> int:
        """Total distinct configurations interned by the shared graph.

        With the per-root design this grew by the full subgraph size on
        every re-exploration; now it is the size of the one global
        graph, so repeated queries over overlapping regions leave it
        unchanged.
        """
        return len(self.graph)

    @property
    def stats(self) -> GraphStats:
        """Engine observability counters (see :class:`GraphStats`).

        The shared :class:`TransitionCache` counters are mirrored on
        every read so they stay fresh even when transitions are applied
        outside :meth:`GlobalConfigurationGraph.explore` (the
        adversary's event-filtered searches do exactly that).
        """
        stats = self.graph.stats
        stats.transition_hits = self.transitions.hits
        stats.transition_misses = self.transitions.misses
        codec = self.graph.codec
        if codec is not None:
            stats.packed_step_hits = codec.step_hits
            stats.packed_step_misses = codec.step_misses
        fault_counters = getattr(self.protocol, "fault_counters", None)
        if fault_counters is not None:
            for key, value in fault_counters.as_dict().items():
                setattr(stats, key, value)
        return stats

    # -- queries ---------------------------------------------------------------

    def valency(self, configuration: Configuration) -> Valency:
        """The valency of *configuration* (cached)."""
        cached = self._lookup(configuration)
        if cached is not None:
            self.graph.stats.cache_hits += 1
            return cached
        self.graph.stats.cache_misses += 1
        self.graph.explore(
            configuration, max_configurations=self.max_configurations
        )
        self._classify()
        node = self.graph.node_id(configuration)
        valency = self._node_valency[node]
        return valency if valency is not None else Valency.UNKNOWN

    def _lookup(self, configuration: Configuration) -> Valency | None:
        """Cached valency without growing the graph, else ``None``."""
        node = self.graph.find(configuration)
        if node is None or node >= len(self._node_valency):
            return None
        return self._node_valency[node]

    def peek(self, configuration: Configuration) -> Valency:
        """Cached valency, :attr:`Valency.UNKNOWN` if undetermined —
        never explores.  For census passes over already-grown regions."""
        cached = self._lookup(configuration)
        return cached if cached is not None else Valency.UNKNOWN

    def peek_node(self, node: int) -> Valency:
        """Cached valency by node id — no encode, no decode, no growth.

        The census path uses this to classify whole closures without
        materializing rich configurations from the packed engine.
        """
        if node >= len(self._node_valency):
            return Valency.UNKNOWN
        cached = self._node_valency[node]
        return cached if cached is not None else Valency.UNKNOWN

    def is_bivalent(self, configuration: Configuration) -> bool:
        """``True`` iff *configuration* is (provably) bivalent."""
        return self.valency(configuration) is Valency.BIVALENT

    def decision_values(
        self, configuration: Configuration
    ) -> frozenset[int] | None:
        """The exact set V for *configuration*, or ``None`` if unknown."""
        valency = self.valency(configuration)
        if valency is Valency.UNKNOWN:
            return None
        if valency is Valency.BIVALENT:
            return frozenset((ZERO, ONE))
        if valency is Valency.NONE:
            return frozenset()
        return frozenset((valency.decided_value,))

    def bivalence_witness(
        self, configuration: Configuration
    ) -> BivalenceWitness | None:
        """Witness schedules to both decisions, or ``None`` if not
        (provably) bivalent.

        A pure lookup over the shared graph: BIVALENT was proved by
        reverse reachability over recorded edges, so both witness paths
        already exist in the explored region — no re-exploration.

        Under the symmetry quotient the recorded path connects orbit
        representatives; :meth:`_unquotient_schedule` composes the
        per-edge renamings back out so the returned schedules replay
        concretely from *configuration* itself.
        """
        if self.valency(configuration) is not Valency.BIVALENT:
            return None
        graph = self.graph
        if graph._quotient is not None:
            to_zero = self._unquotient_schedule(
                configuration, set(graph.decision_nodes(ZERO))
            )
            to_one = self._unquotient_schedule(
                configuration, set(graph.decision_nodes(ONE))
            )
        else:
            source = graph.node_id(configuration)
            to_zero = shortest_schedule(
                graph, source, set(graph.decision_nodes(ZERO))
            )
            to_one = shortest_schedule(
                graph, source, set(graph.decision_nodes(ONE))
            )
        if to_zero is None or to_one is None:  # pragma: no cover - guarded
            return None
        return BivalenceWitness(configuration, to_zero, to_one)

    def _unquotient_schedule(
        self, configuration: Configuration, targets: set[int]
    ) -> Schedule | None:
        """A concrete schedule from *configuration* into *targets*.

        The quotient graph stores, for each edge out of a canonical node
        ``K``, the event ``e`` that was applied to ``K`` and the
        renaming ``σ`` taking the raw successor ``e(K)`` to the next
        canonical node.  Maintaining the *accumulated* renaming ``τ``
        with the invariant ``concrete_i = rename(K_i, τ_i)`` (seeded by
        the renaming ``ρ`` that canonicalized *configuration* itself,
        ``τ_0 = ρ⁻¹``), each canonical step lifts to the concrete event
        ``rename(e, τ_i)`` and ``τ`` advances by ``τ ∘ σ⁻¹`` — renaming
        is a validated protocol automorphism, so enabledness and
        decision values transfer step by step.  The result replays from
        *configuration* through plain protocol semantics with no
        reference to the quotient at all.
        """
        from repro.core.reduction import perm_compose, perm_invert

        graph = self.graph
        quotient = graph._quotient
        canonical, rho = quotient.canonicalize_with_perm(
            graph.codec.encode(configuration)
        )
        source = graph.store.find(canonical)
        if source is None:
            return None
        # Shortest canonical path, remembering each edge's renaming.
        path: list[tuple[Event, tuple[int, ...]]] | None = None
        if source in targets:
            path = []
        else:
            parents: dict[int, tuple[int, Event, tuple[int, ...]]] = {}
            queue: deque[int] = deque([source])
            seen = {source}
            while queue and path is None:
                node = queue.popleft()
                for event, successor, sigma in graph.edge_records(node):
                    if successor in seen:
                        continue
                    parents[successor] = (node, event, sigma)
                    if successor in targets:
                        path = []
                        current = successor
                        while current != source:
                            parent, via, perm = parents[current]
                            path.append((via, perm))
                            current = parent
                        path.reverse()
                        break
                    seen.add(successor)
                    queue.append(successor)
        if path is None:
            return None
        tau = perm_invert(rho)
        events: list[Event] = []
        for event, sigma in path:
            events.append(quotient.rename_event(event, tau))
            tau = perm_compose(tau, perm_invert(sigma))
        return Schedule(events)

    def classify_initials(self) -> dict[tuple[int, ...], Valency]:
        """Valency of every initial configuration, keyed by input vector."""
        result: dict[tuple[int, ...], Valency] = {}
        for initial in self.protocol.initial_configurations():
            result[self.protocol.input_vector(initial)] = self.valency(
                initial
            )
        return result

    # -- internals ---------------------------------------------------------------

    def _classify(self) -> None:
        """Assign sound valencies to every unclassified node.

        One reverse-reachability pass over the whole shared graph (flat
        bitset maps).  A node is classified when its relation to
        decision nodes and to the unexplored frontier pins V down:

        * reaches 0-decisions and 1-decisions  → BIVALENT (always sound);
        * reaches exactly one decision value and cannot reach the
          frontier → that univalent class;
        * reaches nothing and cannot reach the frontier → NONE;
        * anything else → left undetermined (so a later query with a
          larger budget can improve it).

        Already-classified nodes are never revisited: their forward
        closures are fixed (expansion records complete successor sets),
        so earlier verdicts remain sound as the graph grows.
        """
        graph = self.graph
        total = len(graph)
        node_valency = self._node_valency
        if len(node_valency) < total:
            node_valency.extend([None] * (total - len(node_valency)))
        started = time.perf_counter()
        reach_zero = graph.reaching_mask(graph.decision_nodes(ZERO))
        reach_one = graph.reaching_mask(graph.decision_nodes(ONE))
        frontier = graph.frontier_ids()
        reach_frontier = graph.reaching_mask(frontier) if frontier else None
        for node in range(total):
            if node_valency[node] is not None:
                continue
            in_zero = reach_zero[node]
            in_one = reach_one[node]
            if in_zero and in_one:
                node_valency[node] = Valency.BIVALENT
            elif reach_frontier is not None and reach_frontier[node]:
                continue  # V not pinned down; stay honest.
            elif in_zero:
                node_valency[node] = Valency.ZERO_VALENT
            elif in_one:
                node_valency[node] = Valency.ONE_VALENT
            else:
                node_valency[node] = Valency.NONE
        graph.stats.classify_time += time.perf_counter() - started
