"""The executable proof machinery: Lemmas 1-3 and the Theorem-1 adversary."""

from repro.adversary.bundle import (
    BundleReport,
    export_bundle,
    load_bundle,
    verify_bundle,
)
from repro.adversary.certificates import (
    AdversaryMode,
    CommutativityWitness,
    Lemma2Certificate,
    Lemma3Case,
    Lemma3Certificate,
    NonDecidingRunCertificate,
    StageRecord,
)
from repro.adversary.flp import DEFAULT_FAIR_TAIL_STEPS, FLPAdversary
from repro.adversary.lemmas import (
    Lemma2Result,
    Lemma3Failure,
    Lemma3Outcome,
    commutativity_diamond,
    find_bivalent_successor,
    find_lemma2,
    random_disjoint_schedules,
)

__all__ = [
    "BundleReport",
    "export_bundle",
    "load_bundle",
    "verify_bundle",
    "AdversaryMode",
    "CommutativityWitness",
    "Lemma2Certificate",
    "Lemma3Case",
    "Lemma3Certificate",
    "NonDecidingRunCertificate",
    "StageRecord",
    "DEFAULT_FAIR_TAIL_STEPS",
    "FLPAdversary",
    "Lemma2Result",
    "Lemma3Failure",
    "Lemma3Outcome",
    "commutativity_diamond",
    "find_bivalent_successor",
    "find_lemma2",
    "random_disjoint_schedules",
]
