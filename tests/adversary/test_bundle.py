"""Tests for portable proof bundles."""

import json

import pytest

from repro.adversary.bundle import (
    _decode_value,
    _encode_value,
    export_bundle,
    load_bundle,
    verify_bundle,
)
from repro.adversary.flp import FLPAdversary
from repro.protocols import ParityArbiterProcess, make_protocol


@pytest.fixture(scope="module")
def bundle_text(parity_arbiter3, parity_arbiter3_analyzer):
    adversary = FLPAdversary(
        parity_arbiter3, analyzer=parity_arbiter3_analyzer
    )
    certificate = adversary.build_run(stages=12)
    return export_bundle(
        "parity-arbiter", certificate, parity_arbiter3
    )


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            0,
            1,
            "hello",
            ("claim", "p1", 0, 1),
            ("s2", "p0", 1, frozenset({"p1", "p2"})),
            ((("nested",),), frozenset({("a", 1)})),
            True,
        ],
    )
    def test_round_trip(self, value):
        assert _decode_value(_encode_value(value)) == value

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            _encode_value(object())

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            _decode_value({"weird": 1})


class TestExport:
    def test_bundle_is_json(self, bundle_text):
        payload = json.loads(bundle_text)
        assert payload["format"].startswith("flpkit")
        assert payload["protocol"] == "parity-arbiter"
        assert payload["n"] == 3
        assert payload["schedule"]

    def test_rejects_mid_run_initial(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        from repro.core.events import NULL, Event

        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=3)
        from dataclasses import replace

        stepped = parity_arbiter3.apply_event(
            certificate.initial, Event("p1", NULL)
        )
        forged = replace(certificate, initial=stepped)
        with pytest.raises(ValueError, match="initial configuration"):
            export_bundle("parity-arbiter", forged, parity_arbiter3)


class TestRoundTrip:
    def test_load_reconstructs_certificate(self, bundle_text):
        protocol, certificate, _payload = load_bundle(bundle_text)
        assert protocol.num_processes == 3
        assert certificate.length == len(certificate.schedule)
        assert not certificate.final.has_decision

    def test_verify_accepts_genuine(self, bundle_text):
        report = verify_bundle(bundle_text)
        assert report.verified
        assert "VERIFIED" in report.summary()

    def test_verify_rejects_decision_producing_tamper(
        self, bundle_text, parity_arbiter3, parity_arbiter3_analyzer
    ):
        payload = json.loads(bundle_text)
        _protocol, certificate, _ = load_bundle(bundle_text)
        witness = parity_arbiter3_analyzer.bivalence_witness(
            certificate.final
        )
        for event in witness.to_one:
            payload["schedule"].append(
                {
                    "p": event.process,
                    "m": _encode_value(event.value)
                    if not event.is_null_delivery
                    else None,
                    "null": event.is_null_delivery,
                }
            )
        report = verify_bundle(json.dumps(payload))
        assert not report.verified

    def test_verify_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="format"):
            verify_bundle(json.dumps({"format": "something-else"}))

    def test_verify_rejects_inapplicable_schedule(self, bundle_text):
        from repro.core.errors import InvalidEvent

        payload = json.loads(bundle_text)
        payload["schedule"].insert(
            0,
            {
                "p": "p0",
                "m": _encode_value(("claim", "ghost", 1, 1)),
                "null": False,
            },
        )
        with pytest.raises(InvalidEvent):
            load_bundle(json.dumps(payload))


class TestCliIntegration:
    def test_attack_save_then_verify(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "proof.json"
        assert (
            main(
                [
                    "attack",
                    "parity-arbiter",
                    "--stages",
                    "5",
                    "--save",
                    str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["verify", str(target)]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out

    def test_verify_rejects_garbage_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "nope"}))
        assert main(["verify", str(bad)]) == 1
        assert "REJECTED" in capsys.readouterr().err
