"""Declarative fault plans: the fault model as a first-class object.

FLP's impossibility is a statement *about a fault model*: one
unannounced crash kills liveness (Theorem 1), yet the same protocol
family survives a minority of *initial* deaths (Theorem 2).  The repo's
original :class:`~repro.schedulers.base.CrashPlan` only speaks
crash-stop; a :class:`FaultPlan` generalizes it into a composition of
declarative clauses:

* :class:`Crash` — crash-stop at a step (``at_step=0`` = initially
  dead; Section 2's "takes finitely many steps" / Section 4's model);
* :class:`CrashRecovery` — the process freezes during a window and then
  resumes with its per-step state intact but its *inbox emptied* (the
  messages pending to it at recovery are lost);
* :class:`Omission` — a lossy link: messages matching the clause are
  silently discarded, up to a loss ``budget`` (``None`` = unbounded),
  each with a given ``probability``;
* :class:`Duplication` — matching messages are delivered-or-pending
  *twice*: an extra copy enters the buffer, up to a budget;
* :class:`Delay` — the process is frozen (takes no steps, receives
  nothing) during ``[start, end)``; ``end=None`` is an unbounded delay,
  which the paper's definitions make indistinguishable from a crash;
* :class:`Partition` — the network splits into groups for a window;
  messages crossing group boundaries are frozen in transit and released
  when the partition heals (``heal_at=None`` = never).

Plans are *validated* at construction: malformed or contradictory
clauses raise :class:`~repro.core.errors.FaultModelError` (e.g. a
process that is both initially dead and crash-recovering).

Consumers: :class:`~repro.schedulers.faulty.FaultyScheduler` applies a
plan to single simulated runs under any base scheduler;
:class:`~repro.faults.model.FaultedProtocol` bakes a plan's *static
fragment* into the step semantics so exhaustive valency exploration
honours it; :func:`~repro.faults.audit.audit_run` certifies injected
runs against Section 2's admissibility definition; and
:mod:`~repro.faults.survivability` sweeps the protocol zoo against
whole families of plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.errors import FaultModelError
from repro.core.messages import Message
from repro.schedulers.base import CrashPlan

__all__ = [
    "Crash",
    "CrashRecovery",
    "Omission",
    "Duplication",
    "Delay",
    "Partition",
    "FaultPlan",
    "FaultAction",
    "FaultCounters",
    "PlanCrashView",
]


@dataclass(frozen=True)
class Crash:
    """Crash-stop: *process* takes no step at or after *at_step*.

    ``at_step=0`` is Section 4's initially-dead process; any later step
    is Theorem 1's unannounced mid-run death.
    """

    process: str
    at_step: int = 0


@dataclass(frozen=True)
class CrashRecovery:
    """Crash at *at_step*, restart at *recover_at* with an emptied inbox.

    During ``[at_step, recover_at)`` the process is frozen.  At recovery
    it keeps its per-step internal state (the paper's processes have no
    stable storage to lose) but every message still pending to it is
    discarded — the loss that makes naive crash-recovery *inadmissible*
    when any mail was in flight.
    """

    process: str
    at_step: int
    recover_at: int


@dataclass(frozen=True)
class Omission:
    """A lossy link: discard messages matching this clause.

    ``destination``/``sender`` of ``None`` match any process (``sender``
    matching needs send attribution, so it is simulation-only).
    ``budget`` bounds the number of copies lost (``None`` = unbounded);
    each matching copy is lost with ``probability`` (1.0 = the first
    ``budget`` matching copies are lost deterministically).
    """

    destination: str | None = None
    sender: str | None = None
    budget: int | None = 1
    probability: float = 1.0


@dataclass(frozen=True)
class Duplication:
    """A duplicating link: matching messages gain an extra buffered copy.

    Strictly outside the paper's model (the buffer semantics deliver
    each sent message at most once) — included because real networks do
    it and the auditor should *flag* it, not crash on it.
    """

    destination: str | None = None
    sender: str | None = None
    budget: int = 1
    probability: float = 1.0


@dataclass(frozen=True)
class Delay:
    """Freeze *process* during ``[start, end)``; ``end=None`` = forever.

    A bounded delay is admissible — the paper's processes cannot tell a
    slow peer from a dead one, which is the crux of the proof.  An
    unbounded delay makes the process faulty (finitely many steps).
    """

    process: str
    start: int = 0
    end: int | None = None


@dataclass(frozen=True)
class Partition:
    """Split the network into *groups* during ``[start, heal_at)``.

    Messages crossing group boundaries are frozen in transit while the
    partition is active and released when it heals; ``heal_at=None``
    never heals.  Processes named in no group are unconstrained.
    """

    groups: tuple[frozenset[str], ...]
    start: int = 0
    heal_at: int | None = None

    def __post_init__(self):
        object.__setattr__(
            self,
            "groups",
            tuple(frozenset(group) for group in self.groups),
        )

    def separates(self, sender: str, destination: str) -> bool:
        """Whether this partition puts the two endpoints in different
        groups (processes in no group are unconstrained)."""
        side_a = side_b = None
        for index, group in enumerate(self.groups):
            if sender in group:
                side_a = index
            if destination in group:
                side_b = index
        return side_a is not None and side_b is not None and side_a != side_b

    def active_at(self, step_index: int) -> bool:
        return step_index >= self.start and (
            self.heal_at is None or step_index < self.heal_at
        )


#: Clause types in canonical order (used by validation and repr).
_CLAUSE_TYPES = (Crash, CrashRecovery, Omission, Duplication, Delay, Partition)


@dataclass
class FaultCounters:
    """Per-fault-type observability counters.

    Maintained by :class:`~repro.schedulers.faulty.FaultyScheduler`
    (simulation) and :class:`~repro.faults.model.FaultedProtocol`
    (exploration); the exploration-side counters are mirrored into
    :class:`~repro.core.exploration.GraphStats` by the valency analyzer.
    """

    crashes: int = 0
    recoveries: int = 0
    inbox_wipes: int = 0
    omission_drops: int = 0
    duplications: int = 0
    partition_blocks: int = 0
    #: Exploration only: nondeterministic drop edges taken.
    drop_edges: int = 0
    #: Exploration only: sends filtered by a severed link.
    send_blocks: int = 0
    #: Exploration only: events excluded because the process is dead.
    dead_exclusions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "fault_crashes": self.crashes,
            "fault_recoveries": self.recoveries,
            "fault_inbox_wipes": self.inbox_wipes,
            "fault_omission_drops": self.omission_drops,
            "fault_duplications": self.duplications,
            "fault_partition_blocks": self.partition_blocks,
            "fault_drop_edges": self.drop_edges,
            "fault_send_blocks": self.send_blocks,
            "fault_dead_exclusions": self.dead_exclusions,
        }


@dataclass(frozen=True)
class FaultAction:
    """One fault the engine actually injected, for the audit trail.

    ``kind`` is one of ``crash``, ``recover``, ``inbox-wipe``,
    ``omission-drop``, ``duplicate``, ``partition-freeze``.
    """

    step: int
    kind: str
    process: str | None = None
    message: Message | None = None
    detail: str = ""

    #: Kinds that mutate the buffer (their runs cannot be replayed by
    #: the schedule alone, so the auditor skips replay accounting).
    BUFFER_KINDS = frozenset({"omission-drop", "duplicate", "inbox-wipe"})


class FaultPlan:
    """An immutable, validated composition of fault clauses.

    Construction validates structure and cross-clause consistency and
    raises :class:`~repro.core.errors.FaultModelError` on any problem;
    a plan that constructs is ready to hand to a scheduler or analyzer.
    """

    __slots__ = ("_clauses",)

    def __init__(self, clauses: Iterable[object] = ()):
        object.__setattr__(self, "_clauses", tuple(clauses))
        self._validate()

    def __setattr__(self, name, value):
        raise AttributeError("FaultPlan is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: no faults of any kind."""
        return cls()

    @classmethod
    def initially_dead(
        cls, names: Iterable[str]
    ) -> "FaultPlan":
        """Section 4's fault model: *names* dead from step 0."""
        return cls(Crash(name, 0) for name in sorted(names))

    @classmethod
    def from_crash_plan(cls, crash_plan: CrashPlan) -> "FaultPlan":
        """Lift a legacy :class:`CrashPlan` into the clause algebra."""
        return cls(
            Crash(name, step)
            for name, step in sorted(crash_plan.crash_times.items())
        )

    def merged_with_crashes(
        self, crash_times: Mapping[str, int]
    ) -> "FaultPlan":
        """This plan plus extra crash-stop clauses (re-validated, so a
        conflict with an existing clause raises)."""
        if not crash_times:
            return self
        extra = tuple(
            Crash(name, step) for name, step in sorted(crash_times.items())
        )
        return FaultPlan(self._clauses + extra)

    # -- structure ---------------------------------------------------------

    @property
    def clauses(self) -> tuple[object, ...]:
        return self._clauses

    def _of(self, kind) -> tuple:
        return tuple(c for c in self._clauses if isinstance(c, kind))

    @property
    def crashes(self) -> tuple[Crash, ...]:
        return self._of(Crash)

    @property
    def recoveries(self) -> tuple[CrashRecovery, ...]:
        return self._of(CrashRecovery)

    @property
    def omissions(self) -> tuple[Omission, ...]:
        return self._of(Omission)

    @property
    def duplications(self) -> tuple[Duplication, ...]:
        return self._of(Duplication)

    @property
    def delays(self) -> tuple[Delay, ...]:
        return self._of(Delay)

    @property
    def partitions(self) -> tuple[Partition, ...]:
        return self._of(Partition)

    def __bool__(self) -> bool:
        return bool(self._clauses)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._clauses == other._clauses

    def __hash__(self) -> int:
        return hash(self._clauses)

    def __reduce__(self):
        # Reconstruct through __init__: the immutability guard blocks
        # pickle's default slot restoration.
        return (FaultPlan, (self._clauses,))

    def __repr__(self) -> str:
        if not self._clauses:
            return "FaultPlan.none()"
        inner = ", ".join(repr(c) for c in self._clauses)
        return f"FaultPlan([{inner}])"

    def describe(self) -> str:
        """Compact clause summary for tables (e.g. ``crash(p1@6)``)."""
        if not self._clauses:
            return "none"
        parts = []
        for c in self._clauses:
            if isinstance(c, Crash):
                parts.append(f"crash({c.process}@{c.at_step})")
            elif isinstance(c, CrashRecovery):
                parts.append(
                    f"recover({c.process}@{c.at_step}-{c.recover_at})"
                )
            elif isinstance(c, Omission):
                link = f"{c.sender or '*'}->{c.destination or '*'}"
                budget = "inf" if c.budget is None else c.budget
                parts.append(f"omit({link}x{budget})")
            elif isinstance(c, Duplication):
                link = f"{c.sender or '*'}->{c.destination or '*'}"
                parts.append(f"dup({link}x{c.budget})")
            elif isinstance(c, Delay):
                end = "inf" if c.end is None else c.end
                parts.append(f"delay({c.process}@{c.start}-{end})")
            elif isinstance(c, Partition):
                groups = "|".join(
                    "".join(sorted(g)) for g in c.groups
                )
                heal = "never" if c.heal_at is None else c.heal_at
                parts.append(f"split({groups}@{c.start},heal={heal})")
        return "+".join(parts)

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        crashed: dict[str, object] = {}
        delayed: set[str] = set()
        for clause in self._clauses:
            if not isinstance(clause, _CLAUSE_TYPES):
                raise FaultModelError(
                    f"not a fault clause: {clause!r}"
                )
            if isinstance(clause, Crash):
                if clause.at_step < 0:
                    raise FaultModelError(
                        f"crash step must be >= 0, got {clause!r}"
                    )
                self._claim_crash(crashed, clause.process, clause)
            elif isinstance(clause, CrashRecovery):
                if clause.at_step < 0:
                    raise FaultModelError(
                        f"crash step must be >= 0, got {clause!r}"
                    )
                if clause.recover_at <= clause.at_step:
                    raise FaultModelError(
                        f"recovery must come after the crash, got {clause!r}"
                    )
                self._claim_crash(crashed, clause.process, clause)
            elif isinstance(clause, Omission):
                if clause.budget is not None and clause.budget < 0:
                    raise FaultModelError(
                        f"omission budget must be >= 0, got {clause!r}"
                    )
                self._check_probability(clause)
            elif isinstance(clause, Duplication):
                if clause.budget < 0:
                    raise FaultModelError(
                        f"duplication budget must be >= 0, got {clause!r}"
                    )
                self._check_probability(clause)
            elif isinstance(clause, Delay):
                if clause.start < 0:
                    raise FaultModelError(
                        f"delay start must be >= 0, got {clause!r}"
                    )
                if clause.end is not None and clause.end <= clause.start:
                    raise FaultModelError(
                        f"delay window must be non-empty, got {clause!r}"
                    )
                if clause.process in delayed:
                    raise FaultModelError(
                        f"process {clause.process!r} has two delay clauses"
                    )
                delayed.add(clause.process)
            elif isinstance(clause, Partition):
                if len(clause.groups) < 2:
                    raise FaultModelError(
                        f"a partition needs >= 2 groups, got {clause!r}"
                    )
                seen: set[str] = set()
                for group in clause.groups:
                    if not group:
                        raise FaultModelError(
                            f"partition group may not be empty: {clause!r}"
                        )
                    overlap = seen & group
                    if overlap:
                        raise FaultModelError(
                            f"partition groups overlap on "
                            f"{sorted(overlap)}: {clause!r}"
                        )
                    seen |= group
                if clause.start < 0:
                    raise FaultModelError(
                        f"partition start must be >= 0, got {clause!r}"
                    )
                if clause.heal_at is not None and (
                    clause.heal_at <= clause.start
                ):
                    raise FaultModelError(
                        f"partition must heal after it starts, got {clause!r}"
                    )

    @staticmethod
    def _claim_crash(
        crashed: dict[str, object], process: str, clause: object
    ) -> None:
        existing = crashed.get(process)
        if existing is not None:
            raise FaultModelError(
                f"contradictory fault clauses for {process!r}: "
                f"{existing!r} and {clause!r}"
            )
        crashed[process] = clause

    @staticmethod
    def _check_probability(clause) -> None:
        if not 0.0 <= clause.probability <= 1.0:
            raise FaultModelError(
                f"probability must be in [0, 1], got {clause!r}"
            )

    def validate_for(self, process_names: Sequence[str]) -> None:
        """Check every referenced process exists in the protocol."""
        known = set(process_names)
        for clause in self._clauses:
            referenced: list[str] = []
            if isinstance(clause, (Crash, CrashRecovery, Delay)):
                referenced = [clause.process]
            elif isinstance(clause, (Omission, Duplication)):
                referenced = [
                    name
                    for name in (clause.destination, clause.sender)
                    if name is not None
                ]
            elif isinstance(clause, Partition):
                referenced = [name for group in clause.groups for name in group]
            unknown = [name for name in referenced if name not in known]
            if unknown:
                raise FaultModelError(
                    f"clause {clause!r} references unknown "
                    f"process(es) {sorted(unknown)}"
                )

    # -- liveness view -----------------------------------------------------

    def may_step(self, process: str, step_index: int) -> bool:
        """Whether *process* is allowed to take a step at *step_index*."""
        for clause in self._clauses:
            if isinstance(clause, Crash) and clause.process == process:
                if step_index >= clause.at_step:
                    return False
            elif (
                isinstance(clause, CrashRecovery)
                and clause.process == process
            ):
                if clause.at_step <= step_index < clause.recover_at:
                    return False
            elif isinstance(clause, Delay) and clause.process == process:
                if clause.start <= step_index and (
                    clause.end is None or step_index < clause.end
                ):
                    return False
        return True

    def eventually_live(self, process: str) -> bool:
        """Whether *process* takes infinitely many steps under this plan
        (crash-recovery and bounded delay victims do; crash-stop and
        unbounded-delay victims do not)."""
        for clause in self._clauses:
            if isinstance(clause, Crash) and clause.process == process:
                return False
            if (
                isinstance(clause, Delay)
                and clause.process == process
                and clause.end is None
            ):
                return False
        return True

    @property
    def faulty_processes(self) -> frozenset[str]:
        """Processes made *faulty* in the paper's sense: finitely many
        steps (crash-stop victims and unbounded-delay victims)."""
        names: set[str] = set()
        for clause in self._clauses:
            if isinstance(clause, Crash):
                names.add(clause.process)
            elif isinstance(clause, Delay) and clause.end is None:
                names.add(clause.process)
        return frozenset(names)

    def fault_point(self) -> int | None:
        """The step from which every faulty process is silent, or
        ``None`` when the plan makes nobody faulty.  With several faulty
        processes this is the latest silence point (admissibility is
        already broken by the count, so precision does not matter)."""
        points = [
            clause.at_step
            for clause in self._clauses
            if isinstance(clause, Crash)
        ] + [
            clause.start
            for clause in self._clauses
            if isinstance(clause, Delay) and clause.end is None
        ]
        return max(points) if points else None

    def blocks_link(
        self, sender: str | None, destination: str, step_index: int
    ) -> bool:
        """Whether a (sender -> destination) copy is frozen in transit
        by an active partition at *step_index*.  Unknown senders are
        unconstrained (nothing to attribute the copy to)."""
        if sender is None:
            return False
        for clause in self._clauses:
            if isinstance(clause, Partition) and clause.active_at(
                step_index
            ):
                if clause.separates(sender, destination):
                    return True
        return False

    def severs_link_forever(
        self, sender: str | None, destination: str
    ) -> bool:
        """Whether some never-healing partition separates the endpoints
        (such a copy is lost for good, which the auditor must flag)."""
        if sender is None:
            return False
        return any(
            isinstance(clause, Partition)
            and clause.heal_at is None
            and clause.separates(sender, destination)
            for clause in self._clauses
        )

    # -- engine fragments --------------------------------------------------

    @property
    def needs_buffer_engine(self) -> bool:
        """Whether the per-step fault machinery (sender tracking, buffer
        perturbation, partition masking) is needed.  Plans without
        buffer-touching clauses answer ``False`` and ride the
        zero-overhead fast path."""
        return any(
            isinstance(
                clause, (CrashRecovery, Omission, Duplication, Partition)
            )
            for clause in self._clauses
        )

    def simple_crash_plan(self) -> CrashPlan | None:
        """The legacy :class:`CrashPlan` with this plan's liveness
        structure, when it is expressible (no recovery or delay
        windows); ``None`` otherwise."""
        if self.recoveries or self.delays:
            return None
        return CrashPlan(
            {clause.process: clause.at_step for clause in self.crashes}
        )

    def static_fragment(
        self, process_names: Sequence[str]
    ) -> tuple[frozenset[str], frozenset[str], frozenset[tuple[str, str]]]:
        """The time-independent projection used by exhaustive exploration.

        Returns ``(dead, lossy_destinations, severed_links)``:

        * ``dead`` — processes that never take a step (crash at 0, or an
          unbounded delay from step 0);
        * ``lossy_destinations`` — destinations whose inbound copies may
          nondeterministically be lost (unbounded, deterministic,
          destination-only omission clauses);
        * ``severed_links`` — ``(sender, destination)`` pairs cut by a
          never-healing partition active from step 0.

        Raises
        ------
        FaultModelError
            For any time-dependent clause (mid-run crash, recovery,
            bounded budget or window, healing partition): the
            configuration graph is memoryless, so such clauses are
            simulation-only.
        """
        dead: set[str] = set()
        lossy: set[str] = set()
        severed: set[tuple[str, str]] = set()
        names = tuple(process_names)
        for clause in self._clauses:
            if isinstance(clause, Crash):
                if clause.at_step != 0:
                    raise FaultModelError(
                        f"mid-run crash {clause!r} is time-dependent; "
                        "exhaustive exploration supports only the static "
                        "fragment (initially-dead, unbounded omission, "
                        "never-healing partitions from step 0)"
                    )
                dead.add(clause.process)
            elif isinstance(clause, Delay):
                if clause.start != 0 or clause.end is not None:
                    raise FaultModelError(
                        f"delay window {clause!r} is time-dependent; "
                        "simulation-only"
                    )
                dead.add(clause.process)
            elif isinstance(clause, Omission):
                if (
                    clause.budget is not None
                    or clause.probability != 1.0
                    or clause.sender is not None
                ):
                    raise FaultModelError(
                        f"omission clause {clause!r} is history-dependent "
                        "(bounded budget, probability, or sender match); "
                        "exploration supports only unbounded "
                        "destination-only loss"
                    )
                if clause.destination is None:
                    lossy.update(names)
                else:
                    lossy.add(clause.destination)
            elif isinstance(clause, Partition):
                if clause.start != 0 or clause.heal_at is not None:
                    raise FaultModelError(
                        f"partition {clause!r} is time-dependent "
                        "(delayed start or heal time); simulation-only"
                    )
                for sender in names:
                    for destination in names:
                        if sender != destination and clause.separates(
                            sender, destination
                        ):
                            severed.add((sender, destination))
            else:
                raise FaultModelError(
                    f"clause {clause!r} is time-dependent; "
                    "simulation-only"
                )
        return frozenset(dead), frozenset(lossy), frozenset(severed)


class PlanCrashView(CrashPlan):
    """A :class:`CrashPlan`-shaped window onto a :class:`FaultPlan`.

    Base schedulers consult ``self.crash_plan.live_at(...)`` each step;
    installing this view makes any unmodified scheduler honour the
    plan's full liveness structure (crash windows, recovery, delays)
    without knowing fault plans exist.
    """

    def __init__(self, plan: FaultPlan):
        super().__init__({})
        self._plan = plan

    @property
    def faulty(self) -> frozenset[str]:
        return self._plan.faulty_processes

    def is_live(self, process: str, step_index: int) -> bool:
        return self._plan.may_step(process, step_index)

    def survivors(self, names: tuple[str, ...]) -> tuple[str, ...]:
        return tuple(
            name for name in names if self._plan.eventually_live(name)
        )

    def __repr__(self) -> str:
        return f"PlanCrashView({self._plan!r})"
