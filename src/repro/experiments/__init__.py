"""The experiment suite: one module per paper artifact (see DESIGN.md §3).

Run everything::

    python -m repro.experiments            # quick mode
    python -m repro.experiments --full     # full parameters

or programmatically via :func:`repro.experiments.harness.run_all`.
"""

from repro.experiments.harness import (
    ExperimentResult,
    available_experiments,
    experiment,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "experiment",
    "get_experiment",
    "run_all",
    "run_experiment",
]
