"""Tests for the Section-4 (Theorem 2) protocol, including hypothesis
property tests for agreement and validity over random dead-sets."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.simulation import StopCondition, simulate
from repro.protocols import InitiallyDeadProcess, make_protocol
from repro.protocols.initially_dead import build_stage_graph
from repro.schedulers import CrashPlan, RandomScheduler, RoundRobinScheduler

_PROTOCOLS = {}


def protocol_of(n):
    if n not in _PROTOCOLS:
        _PROTOCOLS[n] = make_protocol(InitiallyDeadProcess, n)
    return _PROTOCOLS[n]


def run_theorem2(n, inputs, dead, scheduler=None, max_steps=None):
    protocol = protocol_of(n)
    scheduler = scheduler or RoundRobinScheduler(
        crash_plan=CrashPlan.initially_dead(frozenset(dead))
    )
    return simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=max_steps or 60 * n * n,
        stop=StopCondition.ALL_DECIDED,
    )


class TestStructure:
    def test_listen_quota_is_l_minus_one(self):
        assert protocol_of(5).process("p0").listen_quota == 2
        assert protocol_of(4).process("p0").listen_quota == 2
        assert protocol_of(9).process("p0").listen_quota == 4

    def test_build_stage_graph(self):
        entries = frozenset(
            {
                ("a", 0, frozenset({"b"})),
                ("b", 1, frozenset({"a"})),
            }
        )
        graph = build_stage_graph(entries)
        assert graph.has_edge("b", "a")
        assert graph.has_edge("a", "b")


class TestPositiveDirection:
    def test_no_deaths_all_decide(self):
        result = run_theorem2(5, [1, 0, 1, 0, 1], dead=[])
        assert result.decided
        assert len(result.decisions) == 5
        assert result.agreement_holds

    def test_minority_dead_all_live_decide(self):
        result = run_theorem2(5, [1, 0, 1, 0, 1], dead=["p1", "p3"])
        assert set(result.decisions) == {"p0", "p2", "p4"}
        assert result.agreement_holds

    def test_decision_is_some_input(self):
        result = run_theorem2(5, [0, 0, 1, 0, 0], dead=["p2"])
        assert result.decision_values <= {0, 1}
        assert result.decision_values <= {0}  # the only 1-holder is dead

    def test_n_equals_two(self):
        # L = 2: both must be alive; with none dead it decides.
        result = run_theorem2(2, [1, 0], dead=[])
        assert result.decided
        assert result.agreement_holds


class TestNegativeDirection:
    @pytest.mark.parametrize(
        "n, dead",
        [
            (3, ["p0", "p1"]),
            (5, ["p0", "p1", "p2"]),
            (4, ["p0", "p1"]),
        ],
    )
    def test_majority_dead_blocks_forever(self, n, dead):
        inputs = [i % 2 for i in range(n)]
        result = run_theorem2(n, inputs, dead=dead)
        assert not result.decided
        assert result.decisions == {}

    def test_death_during_execution_can_block(self):
        """The theorem's other hypothesis: no deaths DURING execution.
        A process that broadcasts stage 1 and then dies becomes an
        ancestor whose stage-2 message never comes."""
        from repro.core.events import NULL, Event

        protocol = protocol_of(3)
        # p1 takes exactly one step — broadcasting its stage-1 message —
        # and then dies.  Its stage-1 message is the FIFO-earliest for
        # both survivors, so both adopt p1 as their predecessor and wait
        # for its stage-2 message forever.
        config = protocol.initial_configuration([0, 1, 0])
        config = protocol.apply_event(config, Event("p1", NULL))
        scheduler = RoundRobinScheduler(crash_plan=CrashPlan({"p1": 0}))
        result = simulate(
            protocol,
            config,
            scheduler,
            max_steps=600,
            stop=StopCondition.ALL_DECIDED,
        )
        assert not result.decided
        assert result.decisions == {}


class TestAgreementProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.sampled_from([3, 5]),
    )
    def test_agreement_and_validity_random_minority_dead(self, seed, n):
        rng = random.Random(seed)
        inputs = [rng.randint(0, 1) for _ in range(n)]
        num_dead = rng.randint(0, (n - 1) // 2)
        dead = rng.sample([f"p{i}" for i in range(n)], num_dead)
        result = run_theorem2(n, inputs, dead)
        live = [f"p{i}" for i in range(n) if f"p{i}" not in dead]
        assert all(name in result.decisions for name in live)
        assert result.agreement_holds
        assert result.decision_values <= set(inputs)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_agreement_under_random_scheduling(self, seed):
        rng = random.Random(seed)
        n = 5
        inputs = [rng.randint(0, 1) for _ in range(n)]
        dead = rng.sample([f"p{i}" for i in range(n)], rng.randint(0, 2))
        scheduler = RandomScheduler(
            seed=seed,
            null_probability=0.15,
            crash_plan=CrashPlan.initially_dead(frozenset(dead)),
        )
        result = run_theorem2(
            n, inputs, dead, scheduler=scheduler, max_steps=5000
        )
        assert result.agreement_holds
        live = [f"p{i}" for i in range(n) if f"p{i}" not in dead]
        assert all(name in result.decisions for name in live)
