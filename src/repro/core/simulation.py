"""Forward simulation of a protocol under a scheduler.

Where :mod:`repro.core.exploration` enumerates *all* behaviours, this
module runs *one*: a :class:`~repro.schedulers.base.Scheduler` repeatedly
chooses the next applicable event, and the simulator applies it, keeping
the fairness bookkeeping needed to judge whether the produced prefix is
consistent with an *admissible* run (at most one faulty process; every
message sent to a nonfaulty process eventually delivered).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.protocol import Protocol

__all__ = ["StopCondition", "FairnessLedger", "SimulationResult", "simulate"]


class StopCondition(enum.Enum):
    """When a simulation should stop early (before the step budget)."""

    #: Stop as soon as *some* process decides — the paper's weak
    #: requirement ("we require only that some process eventually make a
    #: decision").
    ANY_DECIDED = "any-decided"
    #: Stop when every live (non-crashed) process has decided — what "any
    #: algorithm of interest" requires.
    ALL_DECIDED = "all-decided"
    #: Never stop early; run until the scheduler yields no event or the
    #: step budget is reached.
    NEVER = "never"


@dataclass
class FairnessLedger:
    """Bookkeeping for admissibility judgements on finite prefixes.

    A run is admissible when at most one process is faulty (takes only
    finitely many steps) and every message sent to a nonfaulty process is
    eventually received.  On a finite prefix we can only report the
    *current debt*: how long each process has been idle and how long each
    message has been pending.
    """

    #: Steps taken per process.
    steps_taken: dict[str, int] = field(default_factory=dict)
    #: Step index at which each process last took a step.
    last_step_at: dict[str, int] = field(default_factory=dict)
    #: Messages delivered per process.
    deliveries: dict[str, int] = field(default_factory=dict)
    #: Null deliveries per process.
    null_deliveries: dict[str, int] = field(default_factory=dict)

    def record(self, event: Event, step_index: int) -> None:
        """Record one applied event."""
        name = event.process
        self.steps_taken[name] = self.steps_taken.get(name, 0) + 1
        self.last_step_at[name] = step_index
        if event.is_null_delivery:
            self.null_deliveries[name] = (
                self.null_deliveries.get(name, 0) + 1
            )
        else:
            self.deliveries[name] = self.deliveries.get(name, 0) + 1

    def silent_processes(self, process_names: tuple[str, ...]) -> tuple[str, ...]:
        """Processes that took no steps at all in the prefix."""
        return tuple(
            name for name in process_names if name not in self.steps_taken
        )

    def max_idle_gap(
        self, process_names: tuple[str, ...], current_step: int
    ) -> int:
        """The largest number of steps any process has gone without
        stepping (∞-ish: silent processes count from step 0)."""
        worst = 0
        for name in process_names:
            last = self.last_step_at.get(name, -1)
            worst = max(worst, current_step - last)
        return worst


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    Attributes
    ----------
    final_configuration:
        The configuration after the last applied event.
    schedule:
        The full applied schedule (so the run can be replayed exactly).
    steps:
        Number of events applied.
    decided:
        Whether the stop condition's decision requirement was met.
    decisions:
        ``process -> value`` for every process decided at the end.
    stop_reason:
        Why the simulation ended: ``"decided"``, ``"scheduler-exhausted"``
        (the scheduler returned no event), or ``"step-budget"``.
    ledger:
        Fairness bookkeeping for the prefix.
    """

    final_configuration: Configuration
    schedule: Schedule
    steps: int
    decided: bool
    decisions: dict[str, int]
    stop_reason: str
    ledger: FairnessLedger
    #: Faults injected during the run, in injection order (empty unless
    #: the scheduler exposes a ``perturb`` hook — see
    #: :class:`repro.schedulers.faulty.FaultyScheduler`).
    fault_actions: tuple = ()

    @property
    def decision_values(self) -> frozenset[int]:
        """The distinct values decided in the final configuration."""
        return frozenset(self.decisions.values())

    @property
    def agreement_holds(self) -> bool:
        """No two processes decided differently (vacuously true if none)."""
        return len(self.decision_values) <= 1


def _stop_satisfied(
    condition: StopCondition,
    configuration: Configuration,
    live: frozenset[str],
) -> bool:
    if condition is StopCondition.NEVER:
        return False
    if condition is StopCondition.ANY_DECIDED:
        return configuration.has_decision
    # ALL_DECIDED: every live process must have decided.
    return all(
        configuration.state_of(name).decided for name in sorted(live)
    )


def simulate(
    protocol: Protocol,
    initial: Configuration,
    scheduler: "SchedulerLike",
    max_steps: int = 10_000,
    stop: StopCondition = StopCondition.ALL_DECIDED,
) -> SimulationResult:
    """Run *protocol* from *initial* under *scheduler*.

    The scheduler is asked for one applicable event per step via
    ``scheduler.next_event(protocol, configuration, step_index)``; a
    ``None`` answer ends the run.  Crash faults are the scheduler's
    business: a crashed process is simply one the scheduler stops
    scheduling, which is exactly the paper's fault model (a faulty
    process is one that takes finitely many steps).

    The set of live processes used by :attr:`StopCondition.ALL_DECIDED`
    is taken from ``scheduler.live_processes(protocol)`` when the
    scheduler provides it, else all processes.

    Schedulers may additionally expose a ``perturb(protocol,
    configuration, step_index)`` hook returning ``(configuration,
    fault_actions)``; it is called at the top of every step so
    buffer-level faults (omission, duplication, recovery inbox wipes)
    land before the scheduler picks an event.  The injected actions are
    collected on :attr:`SimulationResult.fault_actions`.
    """
    configuration = initial
    events: list[Event] = []
    ledger = FairnessLedger()
    fault_actions: list = []
    perturb = getattr(scheduler, "perturb", None)
    live = frozenset(
        getattr(scheduler, "live_processes", lambda p: p.process_names)(
            protocol
        )
    )

    stop_reason = "step-budget"
    for step_index in range(max_steps):
        if perturb is not None:
            configuration, injected = perturb(
                protocol, configuration, step_index
            )
            fault_actions.extend(injected)
        if _stop_satisfied(stop, configuration, live):
            stop_reason = "decided"
            break
        event = scheduler.next_event(protocol, configuration, step_index)
        if event is None:
            stop_reason = "scheduler-exhausted"
            break
        configuration = protocol.apply_event(configuration, event)
        events.append(event)
        ledger.record(event, step_index)
    else:
        # Budget exhausted; check whether we happen to be decided anyway.
        if _stop_satisfied(stop, configuration, live):
            stop_reason = "decided"

    decisions = {
        name: configuration.state_of(name).output
        for name in protocol.process_names
        if configuration.state_of(name).decided
    }
    return SimulationResult(
        final_configuration=configuration,
        schedule=Schedule(events),
        steps=len(events),
        decided=stop_reason == "decided",
        decisions=decisions,
        stop_reason=stop_reason,
        ledger=ledger,
        fault_actions=tuple(fault_actions),
    )


class SchedulerLike:
    """Structural protocol for schedulers (duck-typed; see
    :class:`repro.schedulers.base.Scheduler` for the real ABC)."""

    def next_event(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> Event | None:  # pragma: no cover - interface stub
        raise NotImplementedError
