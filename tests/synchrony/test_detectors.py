"""Tests for failure detectors and detector-guided consensus."""

from repro.synchrony.detectors import (
    DetectorGuidedProcess,
    EventuallyStrongDetector,
    PerfectDetector,
    check_eventual_weak_accuracy,
    check_strong_accuracy,
    check_strong_completeness,
)
from repro.synchrony.partial import always_deliver, run_partial_sync

NAMES = tuple(f"p{i}" for i in range(5))


class TestPerfectDetector:
    def test_suspects_exactly_the_crashed(self):
        detector = PerfectDetector(NAMES, {"p1": 3})
        assert detector.suspects("p0", 2) == frozenset()
        assert detector.suspects("p0", 3) == frozenset({"p1"})

    def test_never_suspects_observer(self):
        detector = PerfectDetector(NAMES, {"p1": 0})
        assert "p1" not in detector.suspects("p1", 5)

    def test_axioms(self):
        detector = PerfectDetector(NAMES, {"p1": 3, "p4": 6})
        assert check_strong_completeness(detector, 10)
        assert check_strong_accuracy(detector, 10)
        assert check_eventual_weak_accuracy(detector, 10) == 0


class TestEventuallyStrongDetector:
    def test_noisy_before_stabilization(self):
        detector = EventuallyStrongDetector(
            NAMES, {}, stabilization_time=50, seed=0, noise=0.9
        )
        wrong = [
            suspect
            for time in range(10)
            for suspect in detector.suspects("p0", time)
        ]
        assert wrong  # live processes get slandered

    def test_clean_after_stabilization(self):
        detector = EventuallyStrongDetector(
            NAMES, {"p2": 1}, stabilization_time=5, seed=0, noise=0.9
        )
        assert detector.suspects("p0", 5) == frozenset({"p2"})
        assert detector.suspects("p0", 100) == frozenset({"p2"})

    def test_axioms_hold_on_sufficient_horizon(self):
        detector = EventuallyStrongDetector(
            NAMES, {"p2": 1}, stabilization_time=5, seed=1, noise=0.5
        )
        assert check_strong_completeness(detector, 20)
        stabilized = check_eventual_weak_accuracy(detector, 20)
        assert stabilized is not None
        assert stabilized <= 5

    def test_strong_accuracy_fails_for_noisy_detector(self):
        detector = EventuallyStrongDetector(
            NAMES, {}, stabilization_time=50, seed=0, noise=0.9
        )
        assert not check_strong_accuracy(detector, 10)

    def test_deterministic_given_seed(self):
        a = EventuallyStrongDetector(NAMES, {}, seed=3)
        b = EventuallyStrongDetector(NAMES, {}, seed=3)
        assert a.suspects("p0", 2) == b.suspects("p0", 2)


class TestDetectorGuidedConsensus:
    def test_decides_after_detector_stabilizes(self):
        crash = {"p0": 2}
        detector = EventuallyStrongDetector(
            NAMES, crash, stabilization_time=6, seed=2, noise=0.6
        )
        processes = [
            DetectorGuidedProcess(n, NAMES, f=2, detector=detector)
            for n in NAMES
        ]
        result = run_partial_sync(
            processes,
            dict(zip(NAMES, [1, 0, 1, 0, 1])),
            gst=1,
            drop_rule=always_deliver,
            crash_rounds=crash,
            max_rounds=40,
        )
        assert result.all_live_decided
        assert result.agreement_holds

    def test_perfect_detector_decides_fast(self):
        detector = PerfectDetector(NAMES, {})
        processes = [
            DetectorGuidedProcess(n, NAMES, f=2, detector=detector)
            for n in NAMES
        ]
        result = run_partial_sync(
            processes,
            dict(zip(NAMES, [1, 1, 0, 0, 1])),
            gst=1,
            drop_rule=always_deliver,
        )
        assert set(result.decision_rounds.values()) == {1}

    def test_eternally_slanderous_detector_blocks(self):
        """A detector that never stabilizes (noise ~ 1 forever) starves
        every round: the Chandra-Toueg necessity direction."""
        detector = EventuallyStrongDetector(
            NAMES, {}, stabilization_time=10**9, seed=0, noise=1.0
        )
        processes = [
            DetectorGuidedProcess(n, NAMES, f=2, detector=detector)
            for n in NAMES
        ]
        result = run_partial_sync(
            processes,
            dict(zip(NAMES, [1, 0, 1, 0, 1])),
            gst=1,
            drop_rule=always_deliver,
            max_rounds=25,
        )
        assert result.decisions == {}
        assert result.agreement_holds
