"""Tests for the (plain) arbiter protocol."""

import pytest

from repro.core.events import NULL, Event
from repro.core.simulation import StopCondition, simulate
from repro.protocols import ArbiterProcess, make_protocol
from repro.schedulers import CrashPlan, RandomScheduler, RoundRobinScheduler


class TestStructure:
    def test_default_arbiter_is_first_process(self, arbiter3):
        assert arbiter3.process("p0").is_arbiter
        assert not arbiter3.process("p1").is_arbiter

    def test_custom_arbiter(self):
        protocol = make_protocol(ArbiterProcess, 3, arbiter="p2")
        assert protocol.process("p2").is_arbiter

    def test_unknown_arbiter_rejected(self):
        with pytest.raises(ValueError):
            make_protocol(ArbiterProcess, 3, arbiter="p9")


class TestRaceSemantics:
    def test_first_claim_wins(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        config = arbiter3.apply_event(config, Event("p1", NULL))  # claim 0
        config = arbiter3.apply_event(config, Event("p2", NULL))  # claim 1
        # Deliver p2's claim first: verdict is 1.
        config = arbiter3.apply_event(
            config, Event("p0", ("claim", "p2", 1))
        )
        assert config.state_of("p0").output == 1

    def test_other_order_gives_other_value(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        config = arbiter3.apply_event(config, Event("p1", NULL))
        config = arbiter3.apply_event(config, Event("p2", NULL))
        config = arbiter3.apply_event(
            config, Event("p0", ("claim", "p1", 0))
        )
        assert config.state_of("p0").output == 0

    def test_late_claim_is_absorbed(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        config = arbiter3.apply_event(config, Event("p1", NULL))
        config = arbiter3.apply_event(config, Event("p2", NULL))
        config = arbiter3.apply_event(
            config, Event("p0", ("claim", "p1", 0))
        )
        before = config.state_of("p0")
        config = arbiter3.apply_event(
            config, Event("p0", ("claim", "p2", 1))
        )
        assert config.state_of("p0") == before  # write-once held

    def test_verdict_propagates(self, arbiter3):
        result = simulate(
            arbiter3,
            arbiter3.initial_configuration([0, 1, 0]),
            RoundRobinScheduler(),
            max_steps=100,
        )
        assert result.decided
        assert set(result.decisions) == {"p0", "p1", "p2"}
        assert result.agreement_holds

    def test_arbiter_input_is_irrelevant(self, arbiter3):
        for arb_input in (0, 1):
            result = simulate(
                arbiter3,
                arbiter3.initial_configuration([arb_input, 1, 1]),
                RoundRobinScheduler(),
                max_steps=100,
            )
            assert result.decision_values == frozenset({1})


class TestFaultTolerance:
    def test_survives_one_proposer_crash(self, arbiter3):
        result = simulate(
            arbiter3,
            arbiter3.initial_configuration([0, 0, 1]),
            RoundRobinScheduler(crash_plan=CrashPlan({"p1": 0})),
            max_steps=200,
        )
        # p2's claim still reaches the arbiter.
        assert result.decided
        assert result.decision_values == frozenset({1})

    def test_arbiter_crash_blocks_everyone(self, arbiter3):
        result = simulate(
            arbiter3,
            arbiter3.initial_configuration([0, 0, 1]),
            RoundRobinScheduler(crash_plan=CrashPlan({"p0": 0})),
            max_steps=200,
        )
        assert not result.decided
        assert result.decisions == {}

    def test_agreement_over_random_schedules(self, arbiter3):
        for seed in range(20):
            result = simulate(
                arbiter3,
                arbiter3.initial_configuration([0, 0, 1]),
                RandomScheduler(seed=seed),
                max_steps=400,
                stop=StopCondition.ALL_DECIDED,
            )
            assert result.agreement_holds
