"""Client-side admission backoff: 429 + Retry-After handling.

A saturated daemon pushes back with 429 and a Retry-After hint;
``ServeClient.query`` must honor the hint with bounded, jittered
retries (and ``retry=False`` must restore the old single-shot
behavior).  The daemon tests reuse the admission-control saturation
pattern: one slow job fills the ``max_pending=1`` queue, a *distinct*
spec then bounces.
"""

import random
import time

from repro.serve.client import HttpResponse, ServeClient, retry_after_s

SLOW_SPEC = {"verb": "check", "protocol": "benor", "n": 3, "budget": 30_000}
OTHER_SPEC = {"verb": "check", "protocol": "parity-arbiter", "n": 3}


def _wait_done(client, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        view = client.job(job_id).json()
        if view["state"] in ("done", "failed"):
            return view
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} not done within {timeout_s}s")


class TestRetryAfterParsing:
    def test_parses_seconds(self):
        assert retry_after_s({"retry-after": "1.5"}) == 1.5
        assert retry_after_s({"retry-after": "0"}) == 0.0

    def test_absent_or_malformed_is_none(self):
        assert retry_after_s({}) is None
        assert retry_after_s({"retry-after": "soon"}) is None
        assert retry_after_s({"retry-after": "-3"}) is None


class _ScriptedClient(ServeClient):
    """A client whose wire is a canned list of responses."""

    def __init__(self, responses):
        super().__init__("127.0.0.1", 1)
        self._responses = list(responses)
        self.requests = 0

    def _request(self, method, path, payload=None):
        self.requests += 1
        return self._responses.pop(0)


def _throttled(retry_after=None):
    headers = {} if retry_after is None else {"retry-after": retry_after}
    return HttpResponse(status=429, headers=headers, body=b'{"error":"full"}')


OK = HttpResponse(status=200, headers={}, body=b'{"result":{}}')


class TestBackoffPolicy:
    def test_honors_retry_after_hint_with_jitter(self):
        client = _ScriptedClient([_throttled("1.5"), OK])
        delays = []
        response = client.query(
            {}, sleep=delays.append, rng=random.Random(0)
        )
        assert response.status == 200
        assert client.requests == 2
        assert len(delays) == 1
        # hint * [1.0, 1.25) jitter band
        assert 1.5 <= delays[0] < 1.5 * 1.25

    def test_exponential_fallback_without_hint(self):
        client = _ScriptedClient([_throttled(), _throttled(), OK])
        delays = []
        response = client.query(
            {}, sleep=delays.append, rng=random.Random(7)
        )
        assert response.status == 200
        # base 0.25 doubling per attempt, each inside its jitter band
        assert 0.25 <= delays[0] < 0.25 * 1.25
        assert 0.5 <= delays[1] < 0.5 * 1.25

    def test_delay_capped(self):
        client = _ScriptedClient([_throttled("3600"), OK])
        delays = []
        client.query(
            {},
            sleep=delays.append,
            rng=random.Random(1),
            backoff_cap_s=2.0,
        )
        assert delays[0] < 2.0 * 1.25

    def test_bounded_attempts_return_final_429(self):
        client = _ScriptedClient([_throttled("0.1")] * 3)
        delays = []
        response = client.query(
            {}, sleep=delays.append, rng=random.Random(2), max_retries=2
        )
        assert response.status == 429
        assert client.requests == 3  # initial try + 2 retries
        assert len(delays) == 2

    def test_no_retry_is_single_shot(self):
        client = _ScriptedClient([_throttled("0.1")])
        delays = []
        response = client.query({}, retry=False, sleep=delays.append)
        assert response.status == 429
        assert client.requests == 1
        assert delays == []


class TestAgainstSaturatedDaemon:
    def test_query_rides_out_saturation(self, daemon):
        client = daemon(max_pending=1, job_workers=1).client
        first = client.submit(SLOW_SPEC)
        assert first.status == 202
        job_id = first.json()["job_id"]

        delays = []

        def sleep(delay):
            # Stand in for wall-clock patience: wait for the queue to
            # actually drain, then let the retry fire.
            delays.append(delay)
            _wait_done(client, job_id)

        response = client.query(
            OTHER_SPEC, sleep=sleep, rng=random.Random(0)
        )
        assert response.status == 200
        assert response.headers["x-repro-cache"] == "accepted"
        assert len(delays) >= 1
        # The daemon's hint (1s) reached the client and was jittered.
        assert 1.0 <= delays[0] < 1.25

    def test_no_retry_surfaces_429(self, daemon):
        client = daemon(max_pending=1, job_workers=1).client
        first = client.submit(SLOW_SPEC)
        assert first.status == 202
        response = client.query(OTHER_SPEC, retry=False)
        assert response.status == 429
        assert "retry-after" in response.headers
        _wait_done(client, first.json()["job_id"])
