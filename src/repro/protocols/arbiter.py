"""Arbiter consensus: agreement-safe, order-*sensitive* — and doomed.

One process (by default ``p0``) acts as a referee: every other process
races a claim carrying its input to the arbiter, the arbiter adopts the
*first* claim it receives, decides it, and broadcasts the verdict; the
proposers decide whatever the verdict says.

Why this protocol matters to the reproduction: its decision depends on
the *schedule*, not just the inputs, so mixed-input initial
configurations are genuinely **bivalent** — it is the zoo's canonical
subject for Lemma 2, Lemma 3, and the staged Theorem-1 construction.
The adversary keeps it bivalent for as long as it likes by delaying
claims, and when the forced delivery of a claim to the arbiter would
univalate (the Lemma 3 search fails, Case 2 with ``p = p′`` = the
arbiter), the fallback applies: silencing the arbiter — one faulty
process — yields an admissible run in which nobody ever decides.

Message universe: ``("claim", sender, value)`` and ``("verdict", value)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["ArbiterProcess"]


class ArbiterProcess(ConsensusProcess):
    """A process of the arbiter protocol.

    Parameters
    ----------
    arbiter:
        Name of the refereeing process; defaults to the first process in
        the roster.  The arbiter's own input register is unused (it is a
        pure referee), which keeps the protocol's validity story simple:
        the decision is always some *proposer's* input.
    """

    def __init__(self, name: str, peers, arbiter: str | None = None):
        super().__init__(name, peers)
        self.arbiter = arbiter if arbiter is not None else self.peers[0]
        if self.arbiter not in self.peers:
            raise ValueError(f"arbiter {self.arbiter!r} not in roster")

    @property
    def is_arbiter(self) -> bool:
        return self.name == self.arbiter

    def initial_data(self, input_value: int) -> Hashable:
        if self.is_arbiter:
            return ("waiting",)
        return ("unclaimed",)

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if self.is_arbiter:
            return self._arbiter_step(state, message_value)
        return self._proposer_step(state, message_value)

    def _arbiter_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if state.decided:
            return self.noop(state)
        if (
            isinstance(message_value, tuple)
            and message_value
            and message_value[0] == "claim"
        ):
            _, _sender, value = message_value
            decided = state.with_data(("closed",)).with_decision(value)
            verdicts = self.broadcast(self.others, ("verdict", value))
            return Transition(decided, verdicts)
        # Null delivery (or stray verdict) while waiting: nothing to do.
        return self.noop(state)

    def _proposer_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        data = state.data
        sends: tuple = ()
        if data == ("unclaimed",):
            # First step: race the claim to the arbiter.
            sends = (
                self.send_to(
                    self.arbiter, ("claim", self.name, state.input)
                ),
            )
            data = ("claimed",)
        new_state = state.with_data(data)
        if (
            not new_state.decided
            and isinstance(message_value, tuple)
            and message_value
            and message_value[0] == "verdict"
        ):
            new_state = new_state.with_decision(message_value[1])
        return Transition(new_state, sends)
