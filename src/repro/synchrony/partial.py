"""Partial synchrony: the Global-Stabilization-Time model (DLS).

The conclusion cites Dwork, Lynch, and Stockmeyer's "Consensus in the
presence of partial synchrony" (reference [10]) as one of the two
escape hatches: a model where timing is eventually well-behaved — there
is an unknown *Global Stabilization Time* (GST) after which every
message sent is delivered within a round — even though before GST the
network may lose or delay messages arbitrarily.

This module supplies:

* a phased round executor, :func:`run_partial_sync`, in which each round
  consists of a fixed number of message-exchange phases, and a pluggable
  *drop rule* decides which inter-process messages survive each phase —
  before GST the rule may drop anything; from GST on, everything is
  delivered;
* two drop rules: seeded random loss and a targeted coordinator
  blackout;
* :class:`RotatingCoordinatorProcess`, a Paxos-style rotating-coordinator
  consensus for crash faults with ``N > 2f``: estimates carry
  timestamps, coordinators pick the highest-timestamped estimate from an
  ``N - f`` quorum, and a decision requires ``N - f`` acks — quorum
  intersection gives safety *always* (even before GST), while
  termination arrives within ``f + 1`` rounds after GST (the first
  stabilized round whose coordinator is alive).  FLP is visible at the
  boundary: with GST = ∞ the pre-GST adversary can stall the protocol
  forever, losing no safety but never deciding.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import AbstractSet, Callable, Hashable, Mapping, Sequence

from repro.core.seeding import stable_rng

__all__ = [
    "DropRule",
    "random_drops",
    "coordinator_blackout",
    "always_deliver",
    "Envelope",
    "AdversaryView",
    "PhaseAdversary",
    "PhasedProcess",
    "PartialSyncResult",
    "run_partial_sync",
    "RotatingCoordinatorProcess",
]

#: ``rule(sender, receiver, round, phase) -> delivered?`` — consulted only
#: for rounds before GST; self-addressed messages are always delivered.
DropRule = Callable[[str, str, int, int], bool]


def always_deliver(
    _sender: str, _receiver: str, _round: int, _phase: int
) -> bool:
    """The trivial drop rule: a fully synchronous network."""
    return True


def random_drops(seed: int, deliver_probability: float = 0.5) -> DropRule:
    """Each message independently survives with *deliver_probability*.

    The rule is a deterministic function of (sender, receiver, round,
    phase, seed) so runs are reproducible.
    """
    if not 0.0 <= deliver_probability <= 1.0:
        raise ValueError(
            f"deliver_probability must be in [0, 1], "
            f"got {deliver_probability}"
        )

    def rule(sender: str, receiver: str, round_number: int, phase: int) -> bool:
        rng = stable_rng(
            "random-drops", seed, sender, receiver, round_number, phase
        )
        return rng.random() < deliver_probability

    return rule


def coordinator_blackout(
    coordinator_of: Callable[[int], str]
) -> DropRule:
    """Worst-case pre-GST adversary: isolate each round's coordinator.

    Drops every message to or from the round's coordinator — the
    targeted attack that keeps Paxos-style protocols spinning while GST
    has not arrived.
    """

    def rule(sender: str, receiver: str, round_number: int, _phase: int) -> bool:
        coordinator = coordinator_of(round_number)
        return sender != coordinator and receiver != coordinator

    return rule


@dataclass(frozen=True)
class Envelope:
    """One in-flight inter-process message, visible to an adversary."""

    sender: str
    receiver: str
    payload: Hashable


@dataclass(frozen=True)
class AdversaryView:
    """What a full-information adversary may inspect before a phase.

    Graded adversaries restrict themselves: an oblivious adversary looks
    only at envelope metadata, a content-aware one additionally reads
    ``Envelope.payload``, and only the adaptive full-information grade
    touches ``states`` and ``decisions``.
    """

    round_number: int
    phase: int
    gst: int
    active: tuple[str, ...]
    states: Mapping[str, Hashable]
    decisions: Mapping[str, int]


class PhaseAdversary(ABC):
    """A message adversary consulted once per pre-GST phase.

    Where a :data:`DropRule` answers one message at a time, a
    ``PhaseAdversary`` sees the whole phase's traffic at once — which is
    what "picks the next delivery to maximize disagreement" requires —
    and returns the set of ``(sender, receiver)`` edges to silence.
    Self-addressed messages are never offered to it, and from GST on it
    is not consulted at all, so no adversary can violate the model's
    delivery guarantee.
    """

    def begin_run(self, run_seed: int) -> None:
        """Reset per-run state (budgets, RNG streams) for a new run."""

    @abstractmethod
    def filter_phase(
        self, envelopes: Sequence[Envelope], view: AdversaryView
    ) -> AbstractSet[tuple[str, str]]:
        """Edges ``(sender, receiver)`` to drop this phase."""


class PhasedProcess(ABC):
    """A process of a phased-round partially synchronous protocol."""

    #: Number of message-exchange phases per round.
    PHASES: int = 1

    def __init__(self, name: str, peers: Sequence[str]):
        self.name = name
        self.peers = tuple(peers)

    @property
    def n(self) -> int:
        return len(self.peers)

    @abstractmethod
    def initial_state(self, input_value: int) -> Hashable:
        """State before round 1."""

    @abstractmethod
    def outgoing(
        self, state: Hashable, round_number: int, phase: int
    ) -> Mapping[str, Hashable]:
        """Messages to send this phase: ``destination -> value``.

        Return an empty mapping to stay silent.  Sending to yourself is
        allowed and never dropped.
        """

    @abstractmethod
    def update(
        self,
        state: Hashable,
        round_number: int,
        phase: int,
        received: Mapping[str, Hashable],
    ) -> Hashable:
        """New state after this phase's deliveries (sender -> value)."""

    @abstractmethod
    def decision(self, state: Hashable) -> int | None:
        """Current decision, or ``None``."""


@dataclass
class PartialSyncResult:
    """Outcome of a partially synchronous execution."""

    decisions: dict[str, int]
    decision_rounds: dict[str, int]
    rounds_executed: int
    gst: int
    live: frozenset[str]

    @property
    def decision_values(self) -> frozenset[int]:
        return frozenset(self.decisions.values())

    @property
    def agreement_holds(self) -> bool:
        return len(self.decision_values) <= 1

    @property
    def all_live_decided(self) -> bool:
        return all(name in self.decisions for name in self.live)


def run_partial_sync(
    processes: Sequence[PhasedProcess],
    inputs: Mapping[str, int],
    gst: int,
    drop_rule: DropRule = always_deliver,
    crash_rounds: Mapping[str, int] | None = None,
    max_rounds: int = 64,
    adversary: PhaseAdversary | None = None,
) -> PartialSyncResult:
    """Execute a phased protocol under the GST model.

    Parameters
    ----------
    gst:
        First *stabilized* round: from round ``gst`` on, every message
        between live processes is delivered.  Use a value beyond
        ``max_rounds`` to model "GST never comes" (the FLP regime).
    drop_rule:
        Pre-GST delivery decision, per message.
    crash_rounds:
        ``name -> round``: the process takes no part in that round or
        any later one (clean round-boundary crashes; mid-round crash
        adversaries live in :mod:`repro.synchrony.rounds`).
    adversary:
        Optional :class:`PhaseAdversary` consulted once per pre-GST
        phase with the whole phase's traffic.  A message is delivered
        only if both the drop rule and the adversary allow it.  The
        caller is responsible for :meth:`PhaseAdversary.begin_run`.
    """
    crashes = dict(crash_rounds or {})
    roster = {p.name: p for p in processes}
    states: dict[str, Hashable] = {
        name: process.initial_state(inputs[name])
        for name, process in roster.items()
    }
    decisions: dict[str, int] = {}
    decision_rounds: dict[str, int] = {}
    live = frozenset(
        name for name in roster if name not in crashes
    )
    phases = max(p.PHASES for p in processes)

    rounds_executed = 0
    for round_number in range(1, max_rounds + 1):
        active = [
            name
            for name in roster
            if crashes.get(name, max_rounds + 1) > round_number
        ]
        for phase in range(phases):
            outbox: dict[str, dict[str, Hashable]] = {}
            for name in active:
                outbox[name] = dict(
                    roster[name].outgoing(states[name], round_number, phase)
                )
            silenced: AbstractSet[tuple[str, str]] = frozenset()
            if adversary is not None and round_number < gst:
                envelopes = [
                    Envelope(sender, receiver, payload)
                    for sender in active
                    for receiver, payload in outbox[sender].items()
                    if receiver != sender and receiver in roster
                ]
                if envelopes:
                    view = AdversaryView(
                        round_number=round_number,
                        phase=phase,
                        gst=gst,
                        active=tuple(active),
                        states=dict(states),
                        decisions=dict(decisions),
                    )
                    silenced = adversary.filter_phase(envelopes, view)
            for name in active:
                received: dict[str, Hashable] = {}
                for sender in active:
                    payload = outbox[sender].get(name)
                    if payload is None:
                        continue
                    delivered = sender == name or round_number >= gst or (
                        drop_rule(sender, name, round_number, phase)
                        and (sender, name) not in silenced
                    )
                    if delivered:
                        received[sender] = payload
                states[name] = roster[name].update(
                    states[name], round_number, phase, received
                )
        for name in active:
            if name not in decisions:
                decided = roster[name].decision(states[name])
                if decided is not None:
                    decisions[name] = decided
                    decision_rounds[name] = round_number
        rounds_executed = round_number
        if all(name in decisions for name in live):
            break

    return PartialSyncResult(
        decisions=decisions,
        decision_rounds=decision_rounds,
        rounds_executed=rounds_executed,
        gst=gst,
        live=live,
    )


class RotatingCoordinatorProcess(PhasedProcess):
    """Paxos-style rotating-coordinator consensus for crash faults.

    Requires ``N > 2f``.  Round ``r``'s coordinator is
    ``peers[(r - 1) % N]``.  Phases:

    0. every process sends its ``(estimate, timestamp)`` to the
       coordinator;
    1. a coordinator holding ≥ ``N - f`` estimates broadcasts the value
       with the highest timestamp as the round's proposal;
    2. processes that received the proposal adopt it (timestamp = this
       round) and ack the coordinator;
    3. a coordinator holding ≥ ``N - f`` acks decides and broadcasts the
       decision; decided processes rebroadcast the decision in this
       phase of every later round, so laggards catch up after GST.

    Safety is the quorum-intersection argument (any two ``N - f``
    quorums share a process when ``N > 2f``), and holds under *any*
    drop rule; only termination needs GST.
    """

    PHASES = 4

    def __init__(self, name: str, peers, f: int):
        super().__init__(name, peers)
        if not 0 <= f < self.n / 2:
            raise ValueError(
                f"rotating coordinator requires N > 2f; N={self.n}, "
                f"got f={f}"
            )
        self.f = f

    @property
    def quorum(self) -> int:
        return self.n - self.f

    def coordinator_of(self, round_number: int) -> str:
        return self.peers[(round_number - 1) % self.n]

    def initial_state(self, input_value: int) -> Hashable:
        # (estimate, timestamp, decided value or None,
        #  round scratch: estimates, proposal, acks)
        return (input_value, 0, None, frozenset(), None, frozenset())

    # -- phases ----------------------------------------------------------------

    def outgoing(
        self, state: Hashable, round_number: int, phase: int
    ) -> Mapping[str, Hashable]:
        estimate, timestamp, decided, estimates, proposal, acks = state
        coordinator = self.coordinator_of(round_number)
        if phase == 0:
            if decided is not None:
                return {}
            return {coordinator: ("est", estimate, timestamp)}
        if phase == 1 and self.name == coordinator and decided is None:
            if len(estimates) >= self.quorum:
                # Highest timestamp wins; ties broken deterministically
                # by (value, sender) so runs are reproducible.  Any
                # tie-break is safe: after a decision on (v, r), r
                # strictly exceeds every other timestamp in any quorum.
                best = max(
                    estimates, key=lambda item: (item[1], item[0], item[2])
                )[0]
                return {peer: ("prop", best) for peer in self.peers}
            return {}
        if phase == 2:
            if decided is None and proposal is not None:
                return {coordinator: ("ack", self.name)}
            return {}
        if phase == 3:
            if decided is not None:
                # Decision gossip: keep rebroadcasting so everyone
                # eventually hears it once the network stabilizes.
                return {peer: ("decide", decided) for peer in self.peers}
            if self.name == coordinator and len(acks) >= self.quorum:
                assert proposal is not None
                return {peer: ("decide", proposal) for peer in self.peers}
            return {}
        return {}

    def update(
        self,
        state: Hashable,
        round_number: int,
        phase: int,
        received: Mapping[str, Hashable],
    ) -> Hashable:
        estimate, timestamp, decided, estimates, proposal, acks = state
        coordinator = self.coordinator_of(round_number)

        for sender, payload in received.items():
            kind = payload[0]
            if kind == "est" and self.name == coordinator and phase == 0:
                estimates = estimates | {(payload[1], payload[2], sender)}
            elif kind == "prop" and sender == coordinator and phase == 1:
                proposal = payload[1]
                estimate, timestamp = payload[1], round_number
            elif kind == "ack" and self.name == coordinator and phase == 2:
                acks = acks | {payload[1]}
            elif kind == "decide" and decided is None:
                decided = payload[1]
                estimate = payload[1]

        if phase == 3:
            # End of round: clear the scratch space.
            return (estimate, timestamp, decided, frozenset(), None, frozenset())
        return (estimate, timestamp, decided, estimates, proposal, acks)

    def decision(self, state: Hashable) -> int | None:
        return state[2]
