"""The survivability matrix reproduces the paper's predictions."""

import json

import pytest

from repro.faults.survivability import (
    FAULT_MODELS,
    check_expectations,
    plans_for,
    survivability_matrix,
)

NAMES5 = ("p0", "p1", "p2", "p3", "p4")


class TestPlansFor:
    def test_every_model_yields_valid_plans(self):
        for model in FAULT_MODELS:
            for plan in plans_for(model, NAMES5):
                plan.validate_for(NAMES5)

    def test_none_is_a_single_empty_plan(self):
        plans = plans_for("none", NAMES5)
        assert len(plans) == 1 and not plans[0]

    def test_minority_plans_cover_every_process(self):
        plans = plans_for("initially-dead-minority", NAMES5)
        dead = set()
        for plan in plans:
            assert len(plan.faulty_processes) == 2  # (5-1)//2
            dead |= plan.faulty_processes
        assert dead == set(NAMES5)

    def test_no_minority_exists_for_two_processes(self):
        assert plans_for("initially-dead-minority", ("p0", "p1")) == []

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            plans_for("meteor-strike", NAMES5)


@pytest.fixture(scope="module")
def theorem2_cells():
    return survivability_matrix(
        ["initially-dead"],
        (
            "none",
            "initially-dead-minority",
            "one-mid-crash",
        ),
        max_steps=800,
    )


class TestTheorem2:
    def test_fault_free_runs_decide(self, theorem2_cells):
        cell = next(c for c in theorem2_cells if c.model == "none")
        assert cell.termination == "holds"
        assert cell.admissible_runs == cell.runs

    def test_survives_initially_dead_minority(self, theorem2_cells):
        """Theorem 2: consensus is reachable as long as a majority is
        alive from the start."""
        cell = next(
            c
            for c in theorem2_cells
            if c.model == "initially-dead-minority"
        )
        assert cell.termination == "holds"
        assert cell.agreement == "holds"
        assert cell.validity == "holds"
        # Two initially-dead processes break Section 2's one-fault
        # bound: Section 4 deliberately steps outside it.
        assert cell.flagged.get("multiple-faulty") == cell.runs

    def test_stalls_under_one_mid_run_crash(self, theorem2_cells):
        """Theorem 2's caveat: "no process dies during the execution".
        One admissible mid-run crash leaves stage-1 listeners waiting
        for a stage-2 broadcast that never comes."""
        cell = next(
            c for c in theorem2_cells if c.model == "one-mid-crash"
        )
        assert cell.termination == "stalled"
        assert cell.agreement == "holds"
        assert cell.validity == "holds"
        # A single mid-run crash is exactly the paper's fault model.
        assert cell.admissible_runs == cell.runs


def test_2pc_blocks_under_omission():
    cells = survivability_matrix(["2pc"], ("omission",), max_steps=600)
    cell = cells[0]
    assert cell.termination == "stalled"
    assert cell.agreement == "holds"
    assert cell.flagged.get("omission") == cell.runs


def test_safe_zoo_expectations_hold_on_a_small_sweep():
    cells = survivability_matrix(
        ["wait-for-all", "2pc", "initially-dead"],
        (
            "none",
            "initially-dead-minority",
            "one-mid-crash",
            "omission",
        ),
        max_steps=800,
    )
    failures = check_expectations(cells)
    assert failures == []
    for cell in cells:
        assert cell.admissible_safety_violations == 0


def test_cells_serialize_to_json():
    cells = survivability_matrix(["wait-for-all"], ("none",))
    payload = json.dumps([cell.as_dict() for cell in cells])
    rows = json.loads(payload)
    assert rows[0]["protocol"] == "wait-for-all"
    assert rows[0]["termination"] == "holds"
