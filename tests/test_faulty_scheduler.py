"""FaultyScheduler: deterministic injection behaviour, run by run."""

from repro.core.simulation import StopCondition, simulate
from repro.faults import (
    Crash,
    CrashRecovery,
    Duplication,
    FaultPlan,
    Omission,
    Partition,
)
from repro.protocols import (
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)
from repro.schedulers import (
    CrashPlan,
    FaultyScheduler,
    RoundRobinScheduler,
)


def run(protocol, plan, inputs, *, max_steps=500, base=None, seed=0):
    scheduler = FaultyScheduler(
        base if base is not None else RoundRobinScheduler(), plan, seed=seed
    )
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )
    return result, scheduler


def test_empty_plan_is_transparent():
    protocol = make_protocol(WaitForAllProcess, 3)
    plain = simulate(
        protocol,
        protocol.initial_configuration([1, 0, 1]),
        RoundRobinScheduler(),
        max_steps=500,
    )
    wrapped, scheduler = run(protocol, FaultPlan.none(), [1, 0, 1])
    assert wrapped.decided and plain.decided
    assert wrapped.decisions == plain.decisions
    assert wrapped.schedule == plain.schedule
    assert wrapped.fault_actions == ()
    assert scheduler.counters.as_dict() == {
        key: 0 for key in scheduler.counters.as_dict()
    }


def test_crash_clause_silences_the_victim():
    protocol = make_protocol(WaitForAllProcess, 3)
    result, scheduler = run(
        protocol, FaultPlan([Crash("p0", 0)]), [1, 1, 1]
    )
    assert "p0" not in {event.process for event in result.schedule}
    assert [a.kind for a in result.fault_actions] == ["crash"]
    assert scheduler.counters.crashes == 1
    # wait-for-all genuinely waits for all: it must stall.
    assert not result.decided


def test_base_crash_plan_is_folded_into_the_fault_plan():
    protocol = make_protocol(WaitForAllProcess, 3)
    base = RoundRobinScheduler(crash_plan=CrashPlan({"p1": 0}))
    result, scheduler = run(protocol, FaultPlan.none(), [1, 1, 1], base=base)
    assert scheduler.plan.faulty_processes == frozenset({"p1"})
    assert "p1" not in {event.process for event in result.schedule}


def test_omission_budget_drops_exactly_n_copies():
    protocol = make_protocol(TwoPhaseCommitProcess, 3)
    plan = FaultPlan([Omission(destination="p0", budget=2)])
    result, scheduler = run(protocol, plan, [1, 1, 1])
    drops = [
        action
        for action in result.fault_actions
        if action.kind == "omission-drop"
    ]
    assert len(drops) == 2
    assert all(a.message.destination == "p0" for a in drops)
    assert scheduler.counters.omission_drops == 2
    # 2PC's coordinator never hears the votes: the window widens.
    assert not result.decided


def test_duplication_adds_extra_copies_without_breaking_agreement():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan([Duplication(destination="p1", budget=3)])
    result, scheduler = run(protocol, plan, [1, 0, 1])
    dups = [
        action
        for action in result.fault_actions
        if action.kind == "duplicate"
    ]
    # Only two votes ever address p1, so the budget of 3 is an upper
    # bound, not a quota.
    assert len(dups) == 2
    assert scheduler.counters.duplications == 2
    assert result.agreement_holds


def test_crash_recovery_wipes_the_inbox():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan([CrashRecovery("p0", 2, 10)])
    result, scheduler = run(protocol, plan, [1, 1, 0])
    kinds = [action.kind for action in result.fault_actions]
    assert "crash" in kinds
    assert "recover" in kinds
    assert "inbox-wipe" in kinds  # votes were in flight to p0 at step 10
    assert scheduler.counters.inbox_wipes >= 1
    # The victim steps again after recovery.
    post = [
        index
        for index, event in enumerate(result.schedule)
        if event.process == "p0"
    ]
    assert post  # p0 is scheduled (it recovered)


def test_healing_partition_freezes_then_releases():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan(
        [
            Partition(
                (frozenset({"p0"}), frozenset({"p1", "p2"})),
                start=0,
                heal_at=12,
            )
        ]
    )
    result, scheduler = run(protocol, plan, [1, 1, 1])
    # While split, cross-boundary votes are masked; after healing the
    # protocol completes.
    assert result.decided
    assert scheduler.counters.partition_blocks > 0
    # A healing partition loses nothing: no freeze actions logged.
    assert not any(
        action.kind == "partition-freeze" for action in result.fault_actions
    )


def test_forever_partition_stalls_and_flags_frozen_copies():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan(
        [Partition((frozenset({"p0"}), frozenset({"p1", "p2"})))]
    )
    result, _scheduler = run(protocol, plan, [1, 1, 1], max_steps=300)
    assert not result.decided
    frozen = [
        action
        for action in result.fault_actions
        if action.kind == "partition-freeze"
    ]
    assert frozen  # cross-boundary votes are lost for good


def test_reset_restores_budgets_and_determinism():
    protocol = make_protocol(TwoPhaseCommitProcess, 3)
    plan = FaultPlan([Omission(destination="p0", budget=2)])
    scheduler = FaultyScheduler(RoundRobinScheduler(), plan)
    initial = protocol.initial_configuration([1, 1, 1])
    first = simulate(protocol, initial, scheduler, max_steps=200)
    scheduler.reset()
    second = simulate(protocol, initial, scheduler, max_steps=200)
    assert first.schedule == second.schedule
    assert first.fault_actions == second.fault_actions
