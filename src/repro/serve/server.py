"""The exploration daemon: minimal HTTP/1.1 over ``asyncio``.

No web framework — requests are parsed by hand off the stream reader
(request line, headers, ``Content-Length`` body) and every response
closes the connection.  The surface is deliberately small:

====================  ==========================================
``GET  /healthz``     liveness (200 while the process runs)
``GET  /readyz``      readiness (503 once draining)
``POST /jobs``        submit a job spec; 202/200, 400, or 429
``GET  /jobs``        list job records
``GET  /jobs/<id>``   one record + whether a checkpoint exists
``GET  /jobs/<id>/result``  the exact result bytes (404 until done)
``POST /query``       submit and wait: the synchronous convenience
``GET  /stats``       counters, queue depth, cache size
====================  ==========================================

Robustness behaviours live in :mod:`repro.serve.jobs`; this module
only maps them onto status codes: :class:`AdmissionError` → 429 with
``Retry-After``, :class:`WireError` → 400, draining → 503 on
``/readyz`` and new submissions.

On SIGTERM/SIGINT the daemon drains: running jobs checkpoint and
requeue, the spool keeps them, and the next daemon started on the same
spool resumes them — the same path a SIGKILL exercises, minus the
courtesy.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
from dataclasses import dataclass

from repro.serve.jobs import AdmissionError, JobManager
from repro.serve.spool import Spool
from repro.serve.wire import JobRecord, JobSpec, WireError, canonical_json

__all__ = ["ServeApp", "ServeConfig"]

logger = logging.getLogger(__name__)

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs; the CLI maps its flags straight onto these."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; written to endpoint.json
    spool: str = ".repro-spool"
    max_pending: int = 16
    job_workers: int = 2
    checkpoint_every_s: float = 1.0
    drain_timeout_s: float = 30.0
    #: How long ``POST /query`` waits before answering 504.
    query_timeout_s: float = 300.0


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _record_view(record: JobRecord, manager: JobManager) -> dict[str, object]:
    view = record.to_dict()
    view["has_checkpoint"] = manager.checkpoint_exists(record.id)
    return view


class ServeApp:
    """One daemon instance: spool + job manager + TCP listener."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.spool = Spool(config.spool)
        self.manager = JobManager(
            self.spool,
            max_pending=config.max_pending,
            job_workers=config.job_workers,
            checkpoint_every_s=config.checkpoint_every_s,
        )
        self._server: asyncio.Server | None = None
        self._stop = asyncio.Event()
        self.port: int | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.spool.write_endpoint(self.config.host, self.port, os.getpid())
        logger.info(
            "repro serve listening on %s:%d (spool %s, %d recovered jobs)",
            self.config.host,
            self.port,
            self.spool.root,
            self.manager.counters["jobs_recovered"],
        )

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.drain(self.config.drain_timeout_s)
        logger.info(
            "repro serve drained (%d jobs suspended to spool)",
            self.manager.counters["jobs_suspended"],
        )

    def request_shutdown(self) -> None:
        self._stop.set()

    async def run(self) -> None:
        """start → wait for SIGTERM/SIGINT (or request_shutdown) → drain."""
        await self.start()
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (tests run the daemon in one) or
                # a platform without signal support; shutdown then comes
                # from request_shutdown().
                pass
        try:
            await self._stop.wait()
        finally:
            for signum in hooked:
                loop.remove_signal_handler(signum)
            await self.shutdown()

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, headers, body = await self._respond(reader)
        except Exception:  # noqa: BLE001 - last-ditch; never kill the loop
            logger.exception("unhandled error while serving a request")
            status, headers, body = 500, {}, _error_body(
                500, "internal server error"
            )
        try:
            writer.write(_render_response(status, headers, body))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, str], bytes]:
        try:
            method, path, body = await _read_request(reader)
        except _HttpError as error:
            return error.status, {}, _error_body(error.status, error.message)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return 400, {}, _error_body(400, "truncated request")
        try:
            return await self._route(method, path, body)
        except _HttpError as error:
            return error.status, {}, _error_body(error.status, error.message)
        except WireError as error:
            return 400, {}, _error_body(400, str(error))
        except AdmissionError as error:
            headers = {"Retry-After": f"{error.retry_after_s:g}"}
            return 429, headers, _error_body(429, str(error))

    # -- routing -----------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, str], bytes]:
        if path == "/healthz":
            _require_method(method, "GET")
            return 200, {}, canonical_json({"ok": True, "pid": os.getpid()})
        if path == "/readyz":
            _require_method(method, "GET")
            if self.manager.draining:
                return 503, {}, _error_body(503, "draining")
            return 200, {}, canonical_json({"ready": True})
        if path == "/stats":
            _require_method(method, "GET")
            return 200, {}, canonical_json(self._stats())
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            _require_method(method, "GET")
            views = [
                _record_view(record, self.manager)
                for record in self.manager.records()
            ]
            return 200, {}, canonical_json({"jobs": views})
        if path == "/query":
            _require_method(method, "POST")
            return await self._query(body)
        if path.startswith("/jobs/"):
            _require_method(method, "GET")
            rest = path[len("/jobs/"):]
            if rest.endswith("/result"):
                return self._result(rest[: -len("/result")])
            return self._job(rest)
        raise _HttpError(404, f"no route for {path}")

    def _submit(self, body: bytes) -> tuple[int, dict[str, str], bytes]:
        spec = _parse_spec(body)
        kind, record = self.manager.submit(spec)
        status = 200 if kind in ("cached", "joined") else 202
        payload = {
            "job_id": record.id,
            "state": record.state,
            "kind": kind,
            "cache_key": record.key,
        }
        return status, {"X-Repro-Cache": kind}, canonical_json(payload)

    def _job(self, job_id: str) -> tuple[int, dict[str, str], bytes]:
        record = self.manager.record(job_id)
        if record is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return 200, {}, canonical_json(_record_view(record, self.manager))

    def _result(self, job_id: str) -> tuple[int, dict[str, str], bytes]:
        record = self.manager.record(job_id)
        if record is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if record.state == "failed":
            return 500, {}, _error_body(
                500, record.error or "job failed"
            )
        payload = self.manager.result_bytes(job_id)
        if record.state != "done" or payload is None:
            raise _HttpError(404, f"job {job_id} not finished ({record.state})")
        headers = {"X-Repro-Job": record.id}
        if record.partial is not None:
            headers["X-Repro-Partial"] = record.partial.get(
                "reason", "partial"
            )
        return 200, headers, payload

    async def _query(self, body: bytes) -> tuple[int, dict[str, str], bytes]:
        """Submit and wait: one round trip from spec to result bytes."""
        spec = _parse_spec(body)
        kind, record = self.manager.submit(spec)
        if kind != "cached":
            try:
                record = await self.manager.wait(
                    record.id, self.config.query_timeout_s
                )
            except asyncio.TimeoutError:
                raise _HttpError(
                    504,
                    f"job {record.id} still {record.state} after "
                    f"{self.config.query_timeout_s:g}s; poll "
                    f"/jobs/{record.id}/result",
                ) from None
        status, headers, payload = self._result(record.id)
        headers["X-Repro-Cache"] = kind
        return status, headers, payload

    def _stats(self) -> dict[str, object]:
        return {
            "counters": dict(self.manager.counters),
            "pending": self.manager.pending,
            "running": self.manager.running,
            "max_pending": self.manager.max_pending,
            "job_workers": self.manager.job_workers,
            "cache_entries": len(self.manager.cache),
            "draining": self.manager.draining,
            "pid": os.getpid(),
        }


# -- HTTP plumbing ---------------------------------------------------------------


def _parse_spec(body: bytes) -> JobSpec:
    if not body:
        raise WireError("request body must be a JSON job spec")
    try:
        payload = json.loads(body)
    except ValueError as error:
        raise WireError(f"request body is not valid JSON: {error}") from None
    return JobSpec.from_dict(payload)


def _require_method(method: str, expected: str) -> None:
    if method != expected:
        raise _HttpError(405, f"method {method} not allowed; use {expected}")


def _error_body(status: int, message: str) -> bytes:
    return canonical_json({"error": message, "status": status})


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes]:
    """Parse one HTTP/1.1 request: (method, path, body)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "headers too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "headers too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    path = target.split("?", 1)[0]
    content_length = 0
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
    if content_length > _MAX_BODY_BYTES:
        raise _HttpError(413, "body too large")
    body = b""
    if content_length:
        body = await reader.readexactly(content_length)
    return method, path, body


def _render_response(
    status: int, headers: dict[str, str], body: bytes
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    out = [f"HTTP/1.1 {status} {reason}"]
    base = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    base.update(headers)
    out.extend(f"{name}: {value}" for name, value in base.items())
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + body
