"""Resilience policies for the exploration engine.

FLP's adversary survives one crash fault; the exploration engine — our
own adversary, the thing that builds ``e(𝒞)`` and valency maps — should
survive at least as much.  This module holds the *policy* objects the
engine consults while growing a graph:

* :class:`ResilienceConfig` — worker-batch timeouts, bounded retries
  with exponential backoff, pool rebuilds, serial fallback, and
  wall-clock / memory ceilings with graceful degradation.
* :class:`CheckpointConfig` — where and how often to snapshot the graph
  (the snapshot format itself lives in :mod:`repro.core.checkpoint`).
* :class:`ChaosConfig` — deterministic fault injection used by the
  chaos harness (``tests/chaos/`` and ``python -m repro chaos``):
  worker self-SIGKILL, worker hangs, and parent interrupts at chosen
  BFS levels.
* :class:`PartialResult` — the structured report an exploration leaves
  behind when a budget guard stops it instead of an OOM kill.

Everything here is pure data plus one orchestration entry point,
:func:`run_chaos_suite`, which exercises the recovery machinery
end-to-end and checks the recovered graph's fingerprint against a clean
serial run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.configuration import Configuration
    from repro.core.protocol import Protocol

__all__ = [
    "ResilienceConfig",
    "CheckpointConfig",
    "ChaosConfig",
    "PartialResult",
    "BudgetGuard",
    "run_chaos_suite",
    "CHAOS_SCENARIOS",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Recovery and degradation policy for one exploration engine.

    The defaults are maximally conservative: no batch timeout (a legit
    long level is never mistaken for a hang), no wall-clock or memory
    ceiling.  Callers that want crash *detection* — a SIGKILLed pool
    worker makes ``Pool.map`` wait forever — must set
    :attr:`batch_timeout_s`; the CLI does so whenever ``--workers`` is
    given.
    """

    #: Seconds to wait for one frontier batch before declaring the pool
    #: failed.  ``None`` waits forever (no crash/hang detection).
    batch_timeout_s: float | None = None
    #: Re-dispatches of a failed batch before giving up on the pool.
    max_retries: int = 2
    #: Backoff before retry *k* is ``backoff_base_s * backoff_factor**k``.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    #: After pool failure, expand the batch inline instead of raising.
    #: Exploration then *always* completes; the pool is an optimization.
    serial_fallback: bool = True
    #: Cumulative failed dispatches after which the pool is disabled for
    #: the rest of the run (every later batch expands serially).
    max_pool_failures: int = 3
    #: Stop growing (checkpoint + truthful partial result) once this
    #: much wall clock has been spent in the current ``explore`` call.
    wall_clock_limit_s: float | None = None
    #: Stop growing once peak RSS exceeds this many MiB.
    memory_limit_mb: float | None = None
    #: How often (in expanded nodes) the serial engines run their
    #: guard / checkpoint / chaos hooks.  The packed engine checks at
    #: every BFS level regardless.
    check_interval_nodes: int = 256


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to snapshot the graph while exploring.

    A final snapshot is always written on a budget-guard stop or a
    ``KeyboardInterrupt``, independent of the cadence fields; cadence 0
    means *only* those final snapshots.
    """

    #: Snapshot path.  Writes are atomic (temp file + ``os.replace``).
    path: str
    #: Write at most every this many seconds (0 = no time cadence).
    every_seconds: float = 0.0
    #: Write every this many BFS levels (packed engine) or
    #: ``check_interval_nodes``-sized chunks (dict engine); 0 = off.
    every_levels: int = 0
    #: Write every this many *expansions* — engine-independent cadence
    #: that means the same thing for both engines and across resumed
    #: runs; 0 = off.  Checked at the same consistency points as
    #: ``every_levels``, so the actual interval is "at the first
    #: checkpoint opportunity after N expansions".
    every_expansions: int = 0


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault injection for the chaos harness.

    Worker-side faults use an exclusively-created sentinel file so that
    exactly one worker (the first to claim the path) faults once;
    retried batches and rebuilt pools then proceed cleanly.  The
    parent-side interrupt hooks raise ``KeyboardInterrupt`` from inside
    the BFS loop, modeling an operator ^C / SIGINT at an arbitrary
    level.
    """

    #: A pool worker SIGKILLs itself at the start of its next batch
    #: (first worker to create this sentinel path wins; one kill total).
    kill_once_path: str | None = None
    #: A pool worker sleeps :attr:`hang_seconds` once (same sentinel
    #: discipline), simulating a wedged worker.
    hang_once_path: str | None = None
    hang_seconds: float = 30.0
    #: Raise ``KeyboardInterrupt`` after this BFS level (packed engine;
    #: levels are counted from 1 within one ``explore`` call).
    interrupt_after_level: int | None = None
    #: Raise ``KeyboardInterrupt`` once this many nodes have been
    #: expanded (dict engine; compared against cumulative expansions).
    interrupt_after_expansions: int | None = None


@dataclass(frozen=True)
class PartialResult:
    """Structured report of an exploration stopped by a budget guard.

    Stored on ``GlobalConfigurationGraph.last_partial`` and surfaced by
    the CLI, this is the graceful-degradation contract: instead of an
    OOM kill or a lost session, the caller gets the honest extent of the
    explored region and (when checkpointing is configured) a snapshot
    path to resume from.
    """

    #: Why growth stopped: ``"wall-clock"``, ``"memory"`` or
    #: ``"interrupt"``.
    reason: str
    #: Total interned configurations at the stop.
    nodes: int
    #: Fully expanded nodes at the stop.
    expanded: int
    #: Discovered-but-unexpanded nodes (the resumable frontier).
    frontier: int
    #: Wall clock spent in the interrupted ``explore`` call.
    elapsed_s: float
    #: Last checkpoint written, if checkpointing was configured.
    checkpoint_path: str | None = None

    def summary(self) -> str:
        where = (
            f"; checkpoint: {self.checkpoint_path}"
            if self.checkpoint_path
            else "; no checkpoint configured"
        )
        return (
            f"partial result ({self.reason} limit): {self.nodes} "
            f"configurations, {self.expanded} expanded, "
            f"{self.frontier} on the frontier after "
            f"{self.elapsed_s:.3f}s{where}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "reason": self.reason,
            "nodes": self.nodes,
            "expanded": self.expanded,
            "frontier": self.frontier,
            "elapsed_s": round(self.elapsed_s, 6),
            "checkpoint_path": self.checkpoint_path,
        }


class BudgetGuard:
    """Wall-clock and memory ceiling checks for one ``explore`` call.

    ``exceeded()`` returns the breached limit's reason string (or
    ``None``), so the engine can record an honest :class:`PartialResult`
    and stop growing instead of dying.  Peak RSS is read from
    ``getrusage`` — cheap enough to call at every BFS level.
    """

    def __init__(self, config: ResilienceConfig):
        self.config = config
        self.started = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    @staticmethod
    def peak_rss_mb() -> float:
        """Peak resident set size of this process, in MiB."""
        try:
            import resource
        except ImportError:  # pragma: no cover - non-POSIX
            return 0.0
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return rss_kb / 1024.0

    def exceeded(self) -> str | None:
        """The reason string of the first breached ceiling, else None."""
        limit = self.config.wall_clock_limit_s
        if limit is not None and self.elapsed() >= limit:
            return "wall-clock"
        limit = self.config.memory_limit_mb
        if limit is not None and self.peak_rss_mb() >= limit:
            return "memory"
        return None


# ---------------------------------------------------------------------------
# The chaos suite
# ---------------------------------------------------------------------------

#: Scenario names accepted by :func:`run_chaos_suite`.
CHAOS_SCENARIOS = (
    "worker-kill",
    "worker-hang",
    "batch-timeout",
    "interrupt-resume",
    "server-kill",
    "sweep-kill",
)


@dataclass
class ChaosOutcome:
    """One scenario's verdict, as a flat row for tables and JSON."""

    scenario: str
    recovered: bool
    fingerprint_match: bool
    detail: str
    stats: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "recovered": self.recovered,
            "fingerprint_match": self.fingerprint_match,
            "detail": self.detail,
        }

    @property
    def ok(self) -> bool:
        return self.recovered and self.fingerprint_match


def _default_root(protocol: "Protocol") -> "Configuration":
    n = len(protocol.process_names)
    return protocol.initial_configuration([0] * (n - 1) + [1])


def run_chaos_suite(
    protocol: "Protocol",
    *,
    root: "Configuration | None" = None,
    workers: int = 2,
    scenarios: tuple[str, ...] = CHAOS_SCENARIOS,
    max_configurations: int = 200_000,
    work_dir: str | None = None,
    interrupt_levels: tuple[int, ...] | None = None,
    protocol_name: str | None = None,
) -> list[ChaosOutcome]:
    """Inject faults into real explorations and verify full recovery.

    For each scenario, the recovered graph's :meth:`fingerprint` must be
    byte-identical to an uninterrupted serial run — the determinism
    contract of the whole resilient runtime.  Scenarios:

    ``worker-kill``
        One pool worker SIGKILLs itself mid-batch; the batch timeout
        detects the loss, the pool is rebuilt and the batch re-dispatched.
    ``worker-hang``
        One pool worker sleeps far past the batch timeout; same recovery
        path as a crash (a hang is indistinguishable from the parent).
    ``batch-timeout``
        Every dispatch is forced to time out (absurdly small timeout),
        driving retries to exhaustion and the serial fallback.
    ``interrupt-resume``
        ``KeyboardInterrupt`` at chosen BFS levels with per-level
        checkpoints; a fresh engine resumes from the snapshot and must
        finish with the clean fingerprint.
    ``server-kill``
        SIGKILL a real ``repro serve`` daemon subprocess mid-job; the
        restarted daemon must resume the job from its spool checkpoint
        and answer with the cold run's result (see
        :func:`repro.serve.chaos.run_server_kill`).  Needs
        ``protocol_name`` (the daemon takes a registry name over the
        wire); skipped with a note when it is not given.
    ``sweep-kill``
        SIGKILL a ``repro spectrum`` Monte-Carlo sweep subprocess
        mid-grid; the rerun must resume from the per-cell checkpoint
        and finish with the clean run's aggregate fingerprint (see
        :func:`repro.spectrum.chaos.run_sweep_kill`).  Protocol-
        independent: it always runs on the smoke grid.

    Worker scenarios require ``workers > 1``; they are skipped (reported
    as recovered, with a note) when ``workers <= 1``.
    """
    import os
    import tempfile

    from repro.core.checkpoint import load_checkpoint
    from repro.core.exploration import GlobalConfigurationGraph

    root = root if root is not None else _default_root(protocol)
    own_dir = None
    if work_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="flpkit-chaos-")
        work_dir = own_dir.name

    outcomes: list[ChaosOutcome] = []
    try:
        clean = GlobalConfigurationGraph(protocol)
        clean_result = clean.explore(
            root, max_configurations=max_configurations
        )
        clean_fp = clean.fingerprint()
        clean_levels = clean.stats.explore_levels
        # Budget-truncated explorations are legitimately incomplete;
        # recovery means matching the clean run, not beating it.
        clean_complete = clean_result.complete
        clean.close()

        def run_pool_scenario(name: str, chaos: ChaosConfig,
                              config: ResilienceConfig) -> ChaosOutcome:
            graph = GlobalConfigurationGraph(
                protocol,
                workers=workers,
                min_batch_per_worker=1,
                resilience=config,
                chaos=chaos,
            )
            try:
                result = graph.explore(
                    root, max_configurations=max_configurations
                )
                stats = graph.stats.as_dict()
                return ChaosOutcome(
                    scenario=name,
                    recovered=result.complete == clean_complete,
                    fingerprint_match=graph.fingerprint() == clean_fp,
                    detail=(
                        f"timeouts={stats['worker_timeouts']} "
                        f"retries={stats['worker_retries']} "
                        f"rebuilds={stats['pool_rebuilds']} "
                        f"serial_fallbacks={stats['serial_fallbacks']}"
                    ),
                    stats=stats,
                )
            finally:
                graph.close()

        for scenario in scenarios:
            if scenario not in CHAOS_SCENARIOS:
                raise ValueError(
                    f"unknown chaos scenario {scenario!r}; "
                    f"pick from {CHAOS_SCENARIOS}"
                )
            if scenario == "sweep-kill":
                from repro.spectrum.chaos import run_sweep_kill

                outcomes.append(run_sweep_kill(work_dir=work_dir))
                continue
            if scenario == "server-kill":
                if protocol_name is None:
                    outcomes.append(
                        ChaosOutcome(
                            scenario=scenario,
                            recovered=True,
                            fingerprint_match=True,
                            detail="skipped: needs protocol_name (the "
                            "daemon takes a registry name)",
                        )
                    )
                else:
                    from repro.serve.chaos import run_server_kill

                    outcomes.append(
                        run_server_kill(
                            protocol_name,
                            n=len(protocol.process_names),
                            budget=max_configurations,
                            work_dir=work_dir,
                        )
                    )
                continue
            if scenario in ("worker-kill", "worker-hang", "batch-timeout"):
                if workers <= 1:
                    outcomes.append(
                        ChaosOutcome(
                            scenario=scenario,
                            recovered=True,
                            fingerprint_match=True,
                            detail="skipped: workers <= 1",
                        )
                    )
                    continue
            if scenario == "worker-kill":
                outcomes.append(
                    run_pool_scenario(
                        scenario,
                        ChaosConfig(
                            kill_once_path=os.path.join(
                                work_dir, "kill.sentinel"
                            )
                        ),
                        # Generous timeout: a killed worker's batch
                        # *never* completes, so detection does not need
                        # a tight deadline — and a tight one would
                        # misfire on legitimately slow levels.
                        ResilienceConfig(
                            batch_timeout_s=10.0, max_retries=3
                        ),
                    )
                )
            elif scenario == "worker-hang":
                outcomes.append(
                    run_pool_scenario(
                        scenario,
                        ChaosConfig(
                            hang_once_path=os.path.join(
                                work_dir, "hang.sentinel"
                            ),
                            hang_seconds=30.0,
                        ),
                        ResilienceConfig(
                            batch_timeout_s=0.5, max_retries=3
                        ),
                    )
                )
            elif scenario == "batch-timeout":
                outcomes.append(
                    run_pool_scenario(
                        scenario,
                        ChaosConfig(),
                        ResilienceConfig(
                            batch_timeout_s=1e-6,
                            max_retries=1,
                            backoff_base_s=0.0,
                        ),
                    )
                )
            elif scenario == "interrupt-resume":
                levels = interrupt_levels
                if levels is None:
                    # Early, middle, and final level of the clean run.
                    levels = tuple(
                        sorted(
                            {1, max(1, clean_levels // 2), clean_levels}
                        )
                    )
                ckpt = os.path.join(work_dir, "interrupt.ckpt")
                failures = []
                interrupted_any = False
                for level in levels:
                    victim = GlobalConfigurationGraph(
                        protocol,
                        checkpoint=CheckpointConfig(
                            path=ckpt, every_levels=1
                        ),
                        chaos=ChaosConfig(interrupt_after_level=level),
                    )
                    try:
                        victim.explore(
                            root, max_configurations=max_configurations
                        )
                    except KeyboardInterrupt:
                        interrupted_any = True
                    finally:
                        victim.close()
                    resumed = load_checkpoint(ckpt, protocol)
                    try:
                        resumed.explore(
                            root, max_configurations=max_configurations
                        )
                        if resumed.fingerprint() != clean_fp:
                            failures.append(level)
                    finally:
                        resumed.close()
                outcomes.append(
                    ChaosOutcome(
                        scenario=scenario,
                        recovered=interrupted_any and not failures,
                        fingerprint_match=not failures,
                        detail=(
                            f"levels={list(levels)} "
                            f"diverged_at={failures or 'none'}"
                        ),
                    )
                )
    finally:
        if own_dir is not None:
            own_dir.cleanup()
    return outcomes
