"""Opt-in shared-memory frontier expansion for the exploration engine.

The configuration graph grows by expanding BFS frontiers, and each
node's expansion is independent: enumerate the enabled events, apply the
(pure, deterministic) transition function, report the successors.  That
makes frontier levels embarrassingly parallel — *provided* interning
stays centralized.  The contract here:

* The parent stages each level's packed rows in one
  ``multiprocessing.shared_memory`` block that persistent workers index
  directly — no per-level pickling of configurations.  Workers keep a
  mirror of the codec's state/buffer interning tables, synced by delta
  once per level, so each rich object crosses the process boundary at
  most once per run.
* The level is cut into chunks on a shared queue that idle workers pull
  from (dynamic self-scheduling — work stealing), replacing the old
  per-level ``Pool.map`` barrier whose pickle volume made ``--workers``
  an 8x *slowdown*.
* Workers return, per node, one *delta* per enabled event — ``(event,
  stepping process's new state, post-delivery buffer or None, final
  buffer)`` — with already-synced states/buffers referenced by their
  parent-assigned ids and only genuinely novel ones shipped rich.  Only
  the parent interns, so id assignment is a single-writer sequence; the
  intermediate post-delivery buffer is included so the parent allocates
  buffer ids in exactly the serial engine's first-seen order, making
  the merged graph (packed encodings included) byte-identical to a
  serial run.
* Expansion is all-or-nothing per node: the parent applies the budget
  while merging, discarding whole expansions that no longer fit, exactly
  like the serial path.

Workers keep process-local memos for the step function and buffer
transitions; they live for the lifetime of the crew, so repeated levels
amortize them.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import time
from typing import TYPE_CHECKING, Hashable

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolViolation
from repro.core.events import Event
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState
from repro.core.protocol import Protocol
from repro.core.resilience import ChaosConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from array import array

    from repro.core.packing import PackedCodec

__all__ = [
    "CrewFailure",
    "ExpansionDelta",
    "WorkStealingCrew",
    "expand_configuration",
    "init_worker",
]

#: One successor, as a delta against the expanded configuration: the
#: event taken, the stepping process's new state, the intermediate
#: post-delivery buffer (None for null deliveries), and the new buffer.
ExpansionDelta = "tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]"

# Worker-process globals, set once by the pool initializer.
_PROTOCOL: Protocol | None = None
_CHAOS: ChaosConfig | None = None
_STEPS: dict[tuple[str, ProcessState, Hashable], tuple] = {}
_DELIVERIES: dict[tuple[MessageBuffer, Message], MessageBuffer] = {}
_SENDS: dict[tuple[MessageBuffer, tuple[Message, ...]], MessageBuffer] = {}
_PROTOCOL_STEPS: dict[tuple[Event, ProcessState, MessageBuffer], tuple] = {}


def init_worker(
    protocol: Protocol, chaos: ChaosConfig | None = None
) -> None:
    """Pool initializer: bind the protocol and reset the memos.

    *chaos* carries the fault-injection hooks for the chaos harness;
    production engines pass ``None``.  The pool re-runs this initializer
    in respawned workers, so chaos state must live in sentinel files
    (claimed exactly once), never in these process globals.
    """
    global _PROTOCOL, _CHAOS, _STEPS, _DELIVERIES, _SENDS, _PROTOCOL_STEPS
    _PROTOCOL = protocol
    _CHAOS = chaos
    _STEPS = {}
    _DELIVERIES = {}
    _SENDS = {}
    _PROTOCOL_STEPS = {}


def _claim_sentinel(path: str) -> bool:
    """Atomically claim *path*; True for exactly one claimant ever."""
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def _maybe_inject_fault() -> None:
    """Run the worker-side chaos faults, each at most once per path.

    ``kill_once_path``: die by SIGKILL — the parent sees a batch that
    never completes, exactly like a real OOM-killed or crashed worker.
    ``hang_once_path``: sleep far past the batch timeout, modeling a
    wedged worker; the parent's recovery path is identical.
    """
    chaos = _CHAOS
    if chaos is None:
        return
    if chaos.kill_once_path and _claim_sentinel(chaos.kill_once_path):
        os.kill(os.getpid(), signal.SIGKILL)
    if chaos.hang_once_path and _claim_sentinel(chaos.hang_once_path):
        time.sleep(chaos.hang_seconds)


def expand_configuration(
    configuration: Configuration,
) -> tuple[
    float,
    list[tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]],
]:
    """Expand one configuration: ``(busy_seconds, deltas)``.

    Deltas are emitted in the canonical enabled-event order, so the
    parent's merge reproduces the serial engine's edge order exactly.
    """
    protocol = _PROTOCOL
    if protocol is None:  # pragma: no cover - misuse guard
        raise RuntimeError("worker used before init_worker()")
    _maybe_inject_fault()
    started = time.perf_counter()
    if getattr(protocol, "custom_step_semantics", False):
        deltas = _expand_via_protocol(protocol, configuration)
        return time.perf_counter() - started, deltas
    deltas: list[
        tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]
    ] = []
    buffer = configuration.buffer
    for event in protocol.enabled_events(configuration, include_null=True):
        state = configuration.state_of(event.process)
        step_key = (event.process, state, event.value)
        step = _STEPS.get(step_key)
        if step is None:
            transition = protocol.process(event.process).apply(
                state, event.value
            )
            for message in transition.sends:
                if message.destination not in protocol.process_names:
                    raise ProtocolViolation(
                        f"process {event.process} sent a message to "
                        f"unknown process {message.destination!r}"
                    )
            step = (transition.state, transition.sends)
            _STEPS[step_key] = step
        new_state, sends = step

        new_buffer = buffer
        delivered = None
        if not event.is_null_delivery:
            message = event.message
            delivery_key = (new_buffer, message)
            delivered = _DELIVERIES.get(delivery_key)
            if delivered is None:
                delivered = new_buffer.deliver(message)
                _DELIVERIES[delivery_key] = delivered
            new_buffer = delivered
        if sends:
            send_key = (new_buffer, sends)
            sent = _SENDS.get(send_key)
            if sent is None:
                sent = new_buffer.send_all(sends)
                _SENDS[send_key] = sent
            new_buffer = sent

        deltas.append((event, new_state, delivered, new_buffer))
    return time.perf_counter() - started, deltas


def _expand_via_protocol(
    protocol: Protocol, configuration: Configuration
) -> list[tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]]:
    """Expansion for protocols with non-standard step semantics.

    Protocols flagging ``custom_step_semantics`` (fault injection:
    :class:`~repro.faults.model.FaultedProtocol`) own their event
    vocabulary and their buffer transitions, so every step routes
    through ``protocol.apply_event`` instead of the inlined fast path
    above.  The intermediate post-consumption buffer the parent needs
    for id-allocation parity comes from
    :meth:`~repro.core.protocol.Protocol.consumed_message`.

    Memo key: ``(event, stepping state, buffer)``.  Sound because a
    step is local by the model — the successor's changed components
    (stepping process's state, buffer) are a function of exactly those
    three inputs, for faulted protocols too (the static fault fragment
    is configuration-independent).
    """
    deltas: list[
        tuple[Event, ProcessState, MessageBuffer | None, MessageBuffer]
    ] = []
    buffer = configuration.buffer
    for event in protocol.enabled_events(configuration, include_null=True):
        state = configuration.state_of(event.process)
        key = (event, state, buffer)
        cached = _PROTOCOL_STEPS.get(key)
        if cached is None:
            message = protocol.consumed_message(event)
            delivered = None
            if message is not None:
                delivery_key = (buffer, message)
                delivered = _DELIVERIES.get(delivery_key)
                if delivered is None:
                    delivered = buffer.deliver(message)
                    _DELIVERIES[delivery_key] = delivered
            successor = protocol.apply_event(configuration, event)
            cached = (
                successor.state_of(event.process),
                delivered,
                successor.buffer,
            )
            _PROTOCOL_STEPS[key] = cached
        deltas.append((event,) + cached)
    return deltas


# ---------------------------------------------------------------------------
# The shared-memory work-stealing crew
# ---------------------------------------------------------------------------


class CrewFailure(Exception):
    """One dispatch wait failed.

    ``kind`` is ``"timeout"`` (no chunk completed in time, or a worker
    process died — a dead worker's claimed chunk never completes, which
    is observationally a timeout) or ``"fault"`` (the result channel
    itself broke).  The engine maps these onto its recovery counters
    and decides between rebuild-and-retry and serial fallback.
    """

    def __init__(self, kind: str, detail: str):
        super().__init__(detail)
        self.kind = kind


def _kernel_capable(protocol: Protocol) -> bool:
    """Whether workers may expand *protocol* through a local kernel.

    True for stock protocols, and for custom-step protocols that supply
    their own packed codec (the faulted model: its codec speaks the
    fault fragment, so the kernel's fill oracle does too).  A
    custom-step protocol with only the generic codec must keep routing
    every step through ``apply_event`` — the rich fallback path.
    """
    return (
        not getattr(protocol, "custom_step_semantics", False)
        or type(protocol).packed_codec is not Protocol.packed_codec
    )


def _crew_worker(
    protocol, chaos, use_kernel, task_q, result_q, sync_q
) -> None:
    """Worker loop: steal chunks, expand rows straight from shared memory.

    The worker mirrors the parent codec's state/buffer tables (synced by
    delta through ``sync_q``, cumulative and in dispatch order).  With
    *use_kernel* (and a kernel-capable protocol) each frontier row is
    translated to worker-local ids and expanded through a local
    :class:`~repro.core.kernel.TransitionKernel` — the same dense-table
    gathers as serial kernel expansion, no rich configuration built per
    row.  Otherwise the row's rich configuration is reconstructed — the
    exact ``PackedCodec.decode`` expression — and expanded through the
    protocol.  Either way the wire format is identical: known
    states/buffers are reported by parent id; novel ones ride along
    rich, exactly once each (pickle dedups repeats within a chunk).
    """
    from multiprocessing import resource_tracker, shared_memory

    # Workers only ever *attach* to parent-owned frontier segments, but
    # ``SharedMemory(name=...)`` registers the segment with the resource
    # tracker anyway (CPython gh-82300).  A worker's register message
    # can race the parent's unlink bookkeeping in the shared tracker
    # process, leaving phantom "leaked shared_memory" entries at
    # shutdown — so suppress shared-memory registration in this process
    # entirely (ownership and unlinking stay with the parent).
    original_register = resource_tracker.register

    def register_for_parent_owned_segments(name, rtype):
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = register_for_parent_owned_segments

    init_worker(protocol, chaos)
    local_kernel = None
    local_codec = None
    if use_kernel and _kernel_capable(protocol):
        from repro.core.kernel import TransitionKernel

        local_codec = protocol.packed_codec()
        local_kernel = TransitionKernel(local_codec)
    # Rich-path mirrors (parent id -> rich object and back) ...
    states: list[ProcessState] = []
    buffers: list[MessageBuffer] = []
    state_ids: dict[ProcessState, int] = {}
    buffer_ids: dict[MessageBuffer, int] = {}
    # ... and kernel-path translation tables: parent id -> local codec
    # id (dense, synced in parent allocation order) and local id ->
    # parent id (-1 until the parent has interned and synced it back).
    p2l_state: list[int] = []
    p2l_buffer: list[int] = []
    l2p_state: list[int] = []
    l2p_buffer: list[int] = []
    shm = None
    view = None
    shm_name = None
    applied = -1
    names: tuple[str, ...] = ()
    width = 0
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            dispatch_id, chunk_idx, start, end = task
            while applied < dispatch_id:
                (
                    sync_id, name, sync_width, _n_rows, sync_names,
                    s_off, new_states, b_off, new_buffers,
                ) = sync_q.get()
                if local_kernel is not None:
                    synced = (len(p2l_state), len(p2l_buffer))
                else:
                    synced = (len(states), len(buffers))
                if (s_off, b_off) != synced:
                    raise RuntimeError(
                        "codec table sync out of order; parent will "
                        "rebuild the crew"
                    )
                if local_kernel is not None:
                    intern_state = local_codec.intern_state
                    intern_buffer = local_codec.intern_buffer
                    for state in new_states:
                        lid = intern_state(state)
                        if lid >= len(l2p_state):
                            l2p_state.extend(
                                [-1] * (lid + 1 - len(l2p_state))
                            )
                        l2p_state[lid] = len(p2l_state)
                        p2l_state.append(lid)
                    for buffer in new_buffers:
                        lid = intern_buffer(buffer)
                        if lid >= len(l2p_buffer):
                            l2p_buffer.extend(
                                [-1] * (lid + 1 - len(l2p_buffer))
                            )
                        l2p_buffer[lid] = len(p2l_buffer)
                        p2l_buffer.append(lid)
                else:
                    for offset, state in enumerate(new_states, s_off):
                        state_ids[state] = offset
                    states.extend(new_states)
                    for offset, buffer in enumerate(new_buffers, b_off):
                        buffer_ids[buffer] = offset
                    buffers.extend(new_buffers)
                applied = sync_id
                names = sync_names
                width = sync_width
                if name != shm_name:
                    if view is not None:
                        view.release()
                    if shm is not None:
                        shm.close()
                    shm = shared_memory.SharedMemory(name=name)
                    shm_name = name
                    view = memoryview(shm.buf).cast("q")
            busy_total = 0.0
            payload = []
            if local_kernel is not None:
                expand_deltas = local_kernel.expand_row_deltas
                event_at = local_kernel.event_at
                state_at = local_codec.state_at
                buffer_at = local_codec.buffer_at
                n_len = width - 1
                for r in range(start, end):
                    _maybe_inject_fault()
                    started = time.perf_counter()
                    base = r * width
                    local_row = [
                        p2l_state[view[base + i]] for i in range(n_len)
                    ]
                    local_row.append(p2l_buffer[view[base + n_len]])
                    deltas = expand_deltas(tuple(local_row))
                    entries = []
                    n_l2p_s = len(l2p_state)
                    n_l2p_b = len(l2p_buffer)
                    for eid, new_sid, delivered, b in deltas:
                        # Novel components (no parent id yet — locally
                        # allocated beyond the synced watermark, or
                        # synced-slot -1) ship rich, exactly once per
                        # object: materialize caches, so repeats are
                        # the same object and pickle's memo collapses
                        # them on the wire.
                        state_out = (
                            l2p_state[new_sid] if new_sid < n_l2p_s
                            else -1
                        )
                        if state_out < 0:
                            state_out = state_at(new_sid)
                        if delivered < 0:
                            delivered_out = None
                        else:
                            delivered_out = (
                                l2p_buffer[delivered]
                                if delivered < n_l2p_b else -1
                            )
                            if delivered_out < 0:
                                delivered_out = buffer_at(delivered)
                        buffer_out = l2p_buffer[b] if b < n_l2p_b else -1
                        if buffer_out < 0:
                            buffer_out = buffer_at(b)
                        entries.append(
                            (event_at(eid), state_out,
                             delivered_out, buffer_out)
                        )
                    payload.append(entries)
                    busy_total += time.perf_counter() - started
            else:
                for r in range(start, end):
                    base = r * width
                    row = tuple(view[base:base + width])
                    configuration = Configuration(
                        {
                            process: states[row[position]]
                            for position, process in enumerate(names)
                        },
                        buffers[row[-1]],
                    )
                    busy, deltas = expand_configuration(configuration)
                    busy_total += busy
                    payload.append([
                        (
                            event,
                            state_ids.get(state, state),
                            None if delivered is None
                            else buffer_ids.get(delivered, delivered),
                            buffer_ids.get(buffer, buffer),
                        )
                        for event, state, delivered, buffer in deltas
                    ])
            result_q.put((dispatch_id, chunk_idx, busy_total, payload))
    except (KeyboardInterrupt, EOFError, OSError):  # pragma: no cover
        pass  # parent teardown mid-wait; nothing to salvage
    finally:
        if view is not None:
            view.release()
        if shm is not None:
            shm.close()


class _Dispatch:
    """Bookkeeping for one in-flight frontier level."""

    __slots__ = ("id", "chunks", "pending", "results", "width", "n_rows")

    def __init__(
        self,
        dispatch_id: int,
        chunks: list[tuple[int, int]],
        width: int,
        n_rows: int,
    ):
        self.id = dispatch_id
        self.chunks = chunks
        self.pending = set(range(len(chunks)))
        self.results: dict[int, tuple[float, list]] = {}
        self.width = width
        self.n_rows = n_rows


class WorkStealingCrew:
    """Persistent expansion workers fed through shared memory.

    One crew per engine: spawned lazily on the first big-enough
    frontier, reused across levels (worker memos and table mirrors
    amortize), torn down by :meth:`close`.  The parent owns one frontier
    segment, grown geometrically and reused — workers re-attach only
    when its name changes.  :meth:`rebuild` replaces every process *and*
    every queue (a worker terminated mid-``put`` can leave a queue's
    pipe unusable) and resets the sync watermarks so the next dispatch
    carries full tables to the fresh mirrors.
    """

    #: Liveness-check granularity while waiting on results.
    _POLL_S = 0.05

    def __init__(
        self,
        workers: int,
        protocol: Protocol,
        chaos: ChaosConfig | None = None,
        chunks_per_worker: int = 4,
        kernel: bool = True,
    ):
        self._workers = max(2, workers)
        self._protocol = protocol
        self._chaos = chaos
        self._chunks_per_worker = max(1, chunks_per_worker)
        self._kernel = kernel
        self._ctx = multiprocessing.get_context()
        self._seq = 0
        self._shm = None
        self._shm_view = None
        self._pool: list = []
        self._spawn()

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> None:
        ctx = self._ctx
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._sync_qs = [ctx.Queue() for _ in range(self._workers)]
        self._synced_states = 0
        self._synced_buffers = 0
        self._pool = []
        for sync_q in self._sync_qs:
            process = ctx.Process(
                target=_crew_worker,
                args=(
                    self._protocol, self._chaos, self._kernel,
                    self._task_q, self._result_q, sync_q,
                ),
                daemon=True,
            )
            process.start()
            self._pool.append(process)

    def _terminate(self) -> None:
        for process in self._pool:
            if process.is_alive():
                process.terminate()
        for process in self._pool:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck in D state
                process.kill()
                process.join(timeout=1.0)
        for q in (self._task_q, self._result_q, *self._sync_qs):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - already closed
                pass
        self._pool = []

    def rebuild(self) -> None:
        """Tear everything down and respawn (post-fault recovery)."""
        self._terminate()
        self._spawn()

    def close(self) -> None:
        """Terminate the crew and free the frontier segment."""
        self._terminate()
        if self._shm_view is not None:
            self._shm_view.release()
            self._shm_view = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None

    # -- dispatch ----------------------------------------------------------

    def _frontier_segment(self, slots: int):
        from multiprocessing import shared_memory

        needed = max(slots * 8, 1 << 16)
        if self._shm is None or self._shm.size < slots * 8:
            if self._shm is not None:
                needed = max(needed, self._shm.size * 2)
                self._shm_view.release()
                self._shm.close()
                self._shm.unlink()
            self._shm = shared_memory.SharedMemory(
                create=True, size=needed
            )
            self._shm_view = memoryview(self._shm.buf).cast("q")
        return self._shm

    def begin(
        self,
        flat_rows: "array",
        n_rows: int,
        width: int,
        codec: "PackedCodec",
    ) -> _Dispatch:
        """Stage one level and enqueue its chunks; returns the handle."""
        self._frontier_segment(len(flat_rows))
        self._shm_view[: len(flat_rows)] = flat_rows
        self._seq += 1
        chunk = max(
            1, -(-n_rows // (self._workers * self._chunks_per_worker))
        )
        chunks = [
            (start, min(start + chunk, n_rows))
            for start in range(0, n_rows, chunk)
        ]
        dispatch = _Dispatch(self._seq, chunks, width, n_rows)
        self._sync(dispatch, codec)
        self._enqueue(dispatch, dispatch.pending)
        return dispatch

    def redispatch(self, dispatch: _Dispatch, codec: "PackedCodec") -> None:
        """Re-enqueue only the unfinished chunks after a :meth:`rebuild`.

        Completed chunk results are kept — their deltas are pure
        functions of the frontier rows, which still sit untouched in
        the shared segment.  A new dispatch id fences out any stale
        results the dead crew may have left in flight.
        """
        self._seq += 1
        dispatch.id = self._seq
        self._sync(dispatch, codec)
        self._enqueue(dispatch, dispatch.pending)

    def _sync(self, dispatch: _Dispatch, codec: "PackedCodec") -> None:
        s_off, b_off = self._synced_states, self._synced_buffers
        new_states, new_buffers, s_total, b_total = codec.table_delta(
            s_off, b_off
        )
        message = (
            dispatch.id, self._shm.name, dispatch.width, dispatch.n_rows,
            tuple(codec.process_names),
            s_off, new_states, b_off, new_buffers,
        )
        self._synced_states, self._synced_buffers = s_total, b_total
        for sync_q in self._sync_qs:
            sync_q.put(message)

    def _enqueue(self, dispatch: _Dispatch, chunk_ids) -> None:
        for idx in sorted(chunk_ids):
            start, end = dispatch.chunks[idx]
            self._task_q.put((dispatch.id, idx, start, end))

    # -- collection --------------------------------------------------------

    def collect(
        self, dispatch: _Dispatch, timeout_s: float | None
    ) -> int:
        """Wait for any one pending chunk; record it and return its index.

        *timeout_s* bounds the wait for the **next** completion (a
        healthy crew streaming chunks keeps resetting it); ``None``
        waits forever but still notices dead workers at poll
        granularity.
        """
        deadline = (
            None if timeout_s is None
            else time.monotonic() + timeout_s
        )
        while True:
            wait = self._POLL_S
            if deadline is not None:
                wait = max(0.0, min(wait, deadline - time.monotonic()))
            try:
                item = self._result_q.get(timeout=wait)
            except queue_module.Empty:
                if any(not p.is_alive() for p in self._pool):
                    raise CrewFailure(
                        "timeout",
                        "expansion worker died; its chunk is lost",
                    ) from None
                if (
                    deadline is not None
                    and time.monotonic() >= deadline
                ):
                    raise CrewFailure(
                        "timeout",
                        f"no chunk completed within {timeout_s}s",
                    ) from None
                continue
            except (OSError, EOFError, ConnectionError) as error:
                raise CrewFailure(
                    "fault", f"result channel failed: {error}"
                ) from None
            dispatch_id, idx, busy, payload = item
            if dispatch_id != dispatch.id or idx not in dispatch.pending:
                continue  # stale pre-rebuild result, or a duplicate
            dispatch.pending.discard(idx)
            dispatch.results[idx] = (busy, payload)
            return idx
