"""E2 — Lemma 2: the initial hypercube, classified.

For each partially correct protocol, classify all 2^N initial
configurations by exact valency and extract Lemma 2's objects: a
bivalent initial configuration where one exists (order-sensitive
protocols), or the adjacent 0-valent/1-valent boundary pair (protocols
whose decision is a pure function of the inputs — the case the *proof*
of Lemma 2 shows cannot coexist with total correctness).
"""

from __future__ import annotations

from repro.adversary.lemmas import find_lemma2
from repro.core.valency import Valency, ValencyAnalyzer
from repro.experiments.harness import ExperimentResult, experiment
from repro.experiments.zoo import safe_zoo

__all__ = ["run"]


@experiment("E2", "Lemma 2: bivalent initial configurations")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    rows = []
    for label, protocol in safe_zoo(quick):
        analyzer = ValencyAnalyzer(protocol)
        result = find_lemma2(protocol, analyzer)
        census = {valency: 0 for valency in Valency}
        for valency in result.classification.values():
            census[valency] += 1
        example = "-"
        if result.certificate is not None:
            vector = protocol.input_vector(
                result.certificate.bivalent_initial
            )
            example = "x=" + "".join(str(bit) for bit in vector)
            verified = result.certificate.verify(protocol)
        elif result.boundary is not None:
            zero, _one, process = result.boundary
            vector = protocol.input_vector(zero)
            example = (
                "boundary x="
                + "".join(str(bit) for bit in vector)
                + f" flip {process}"
            )
            verified = True
        else:  # pragma: no cover - safe zoo always yields one of the two
            verified = False
        rows.append(
            {
                "protocol": label,
                "initials": 2 ** protocol.num_processes,
                "bivalent": census[Valency.BIVALENT],
                "0-valent": census[Valency.ZERO_VALENT],
                "1-valent": census[Valency.ONE_VALENT],
                "witness": example,
                "verified": verified,
            }
        )
    return ExperimentResult(
        exp_id="E2",
        title="Lemma 2: bivalent initial configurations",
        rows=tuple(rows),
        notes=(
            "expected: order-sensitive protocols (arbiter) have bivalent "
            "initials; input-determined protocols (voting, 2pc, 3pc) "
            "have none but always expose a 0/1 boundary pair — the "
            "object Lemma 2's proof turns into a contradiction",
            "every witness column is re-verified by schedule replay",
        ),
        seed=seed,
        quick=quick,
    )
