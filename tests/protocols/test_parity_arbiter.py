"""Tests for the parity-arbiter protocol (the staged-mode showcase)."""

from repro.core.events import NULL, Event
from repro.core.exploration import explore
from repro.core.simulation import StopCondition, simulate
from repro.core.valency import Valency
from repro.schedulers import RandomScheduler, RoundRobinScheduler


class TestParityMechanics:
    def test_fresh_claim_commits(self, parity_arbiter3):
        protocol = parity_arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        config = protocol.apply_event(config, Event("p1", NULL))
        config = protocol.apply_event(
            config, Event("p0", ("claim", "p1", 0, 0))
        )
        assert config.state_of("p0").output == 0

    def test_null_step_flips_parity(self, parity_arbiter3):
        protocol = parity_arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        assert config.state_of("p0").data == ("judging", 0)
        config = protocol.apply_event(config, Event("p0", NULL))
        assert config.state_of("p0").data == ("judging", 1)

    def test_stale_claim_triggers_retry(self, parity_arbiter3):
        protocol = parity_arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        config = protocol.apply_event(config, Event("p1", NULL))
        config = protocol.apply_event(config, Event("p0", NULL))  # flip
        config = protocol.apply_event(
            config, Event("p0", ("claim", "p1", 0, 0))
        )
        assert not config.state_of("p0").decided
        assert config.buffer.has_message_for("p1")
        retry = config.buffer.messages_for("p1")[0]
        assert retry.value == ("retry", 1)

    def test_retry_causes_reclaim_with_fresh_parity(self, parity_arbiter3):
        protocol = parity_arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        config = protocol.apply_event(config, Event("p1", NULL))
        config = protocol.apply_event(config, Event("p0", NULL))
        config = protocol.apply_event(
            config, Event("p0", ("claim", "p1", 0, 0))
        )
        config = protocol.apply_event(config, Event("p1", ("retry", 1)))
        claims = [
            message
            for message in config.buffer.messages_for("p0")
            if message.value[0] == "claim"
        ]
        assert claims and claims[0].value == ("claim", "p1", 0, 1)

    def test_reclaimed_fresh_claim_commits(self, parity_arbiter3):
        protocol = parity_arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        for event in (
            Event("p1", NULL),
            Event("p0", NULL),
            Event("p0", ("claim", "p1", 0, 0)),
            Event("p1", ("retry", 1)),
            Event("p0", ("claim", "p1", 0, 1)),
        ):
            config = protocol.apply_event(config, event)
        assert config.state_of("p0").output == 0


class TestGlobalProperties:
    def test_reachable_graph_is_finite(self, parity_arbiter3):
        graph = explore(
            parity_arbiter3,
            parity_arbiter3.initial_configuration([0, 0, 1]),
        )
        assert graph.complete

    def test_entire_predecision_region_is_bivalent(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        """The design property enabling eternal staged mode: every
        reachable undecided configuration keeps both outcomes open."""
        graph = explore(
            parity_arbiter3,
            parity_arbiter3.initial_configuration([0, 0, 1]),
        )
        for configuration in graph.configurations:
            valency = parity_arbiter3_analyzer.valency(configuration)
            if configuration.has_decision:
                assert valency.is_univalent
            else:
                assert valency is Valency.BIVALENT

    def test_liveness_under_round_robin(self, parity_arbiter3):
        result = simulate(
            parity_arbiter3,
            parity_arbiter3.initial_configuration([0, 1, 0]),
            RoundRobinScheduler(),
            max_steps=200,
        )
        assert result.decided
        assert result.agreement_holds

    def test_liveness_under_random(self, parity_arbiter3):
        for seed in range(10):
            result = simulate(
                parity_arbiter3,
                parity_arbiter3.initial_configuration([0, 0, 1]),
                RandomScheduler(seed=seed, null_probability=0.2),
                max_steps=3000,
                stop=StopCondition.ALL_DECIDED,
            )
            assert result.decided, seed
            assert result.agreement_holds
