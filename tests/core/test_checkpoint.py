"""Checkpoint format, integrity verification, and resume identity."""

import json
import os

import pytest

from repro.core.checkpoint import (
    CHECKPOINT_MAGIC,
    load_checkpoint,
    read_checkpoint_header,
    restore_checkpoint,
    save_checkpoint,
)
from repro.core.errors import (
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
)
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.resilience import CheckpointConfig
from repro.protocols import ParityArbiterProcess, make_protocol


@pytest.fixture(scope="module")
def protocol():
    return make_protocol(ParityArbiterProcess, 3)


def _root(protocol):
    return protocol.initial_configuration([0, 0, 1])


def _explored(protocol, *, packed=True, budget=400):
    graph = GlobalConfigurationGraph(protocol, packed=packed)
    graph.explore(_root(protocol), max_configurations=budget)
    return graph


class TestRoundTrip:
    @pytest.mark.parametrize("packed", [True, False], ids=["packed", "dict"])
    def test_restore_preserves_everything(self, protocol, tmp_path, packed):
        graph = _explored(protocol, packed=packed)
        path = str(tmp_path / "g.ckpt")
        info = save_checkpoint(graph, path)
        assert info.nodes == len(graph)
        assert info.edges == sum(len(out) for out in graph.successors)

        restored = load_checkpoint(path, protocol)
        assert restored.packed == packed
        assert len(restored) == len(graph)
        assert restored.successors == graph.successors
        assert restored.frontier_ids() == graph.frontier_ids()
        assert restored.fingerprint() == graph.fingerprint()
        assert restored.stats.resumed_nodes == len(graph)
        # Decision indexes are rebuilt in id order == intern order.
        for value in (0, 1):
            assert restored.decision_nodes(value) == graph.decision_nodes(
                value
            )

    def test_header_readable_without_unpickling(self, protocol, tmp_path):
        graph = _explored(protocol)
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        header = read_checkpoint_header(path)
        assert header["magic"] == CHECKPOINT_MAGIC
        assert header["engine"] == "packed"
        assert header["nodes"] == len(graph)
        assert header["process_names"] == list(protocol.process_names)

    def test_write_is_atomic_no_temp_left_behind(self, protocol, tmp_path):
        graph = _explored(protocol)
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        save_checkpoint(graph, path)  # overwrite goes through os.replace
        assert os.listdir(tmp_path) == ["g.ckpt"]


class TestResumeIdentity:
    @pytest.mark.parametrize("packed", [True, False], ids=["packed", "dict"])
    def test_grow_after_restore_matches_uninterrupted(
        self, protocol, tmp_path, packed
    ):
        budget = 5000
        clean = GlobalConfigurationGraph(protocol, packed=packed)
        clean.explore(_root(protocol), max_configurations=budget)
        fingerprint = clean.fingerprint()

        partial = GlobalConfigurationGraph(protocol, packed=packed)
        partial.explore(_root(protocol), max_configurations=150)
        path = str(tmp_path / "partial.ckpt")
        save_checkpoint(partial, path)

        resumed = load_checkpoint(path, protocol)
        assert len(resumed) < len(clean)
        resumed.explore(_root(protocol), max_configurations=budget)
        assert resumed.fingerprint() == fingerprint

    def test_resumed_codec_keeps_interning_deterministic(
        self, protocol, tmp_path
    ):
        # The codec's id-allocation tables are the load-bearing state:
        # a resumed encode of a known configuration must produce the
        # packed tuple already in the node table, not a fresh id.
        graph = _explored(protocol, budget=200)
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        resumed = load_checkpoint(path, protocol)
        for node in range(0, len(graph), 7):
            configuration = graph.configuration_at(node)
            assert resumed.find(configuration) == node


class TestIntegrity:
    def test_flipped_payload_byte_is_detected(self, protocol, tmp_path):
        graph = _explored(protocol)
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            load_checkpoint(path, protocol)

    def test_not_a_checkpoint(self, protocol, tmp_path):
        path = str(tmp_path / "junk.ckpt")
        open(path, "w").write("this is not a checkpoint\npayload")
        with pytest.raises(CheckpointCorrupt):
            read_checkpoint_header(path)

    def test_future_version_refused(self, protocol, tmp_path):
        graph = _explored(protocol)
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        with open(path, "rb") as handle:
            header = json.loads(handle.readline())
            payload = handle.read()
        header["version"] = 999
        with open(path, "wb") as handle:
            handle.write(json.dumps(header).encode() + b"\n" + payload)
        with pytest.raises(CheckpointMismatch, match="version"):
            read_checkpoint_header(path)

    def test_missing_file(self, protocol, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.ckpt"), protocol)


class TestMismatches:
    def test_engine_mode_mismatch(self, protocol, tmp_path):
        graph = _explored(protocol, packed=True)
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        target = GlobalConfigurationGraph(protocol, packed=False)
        with pytest.raises(CheckpointMismatch, match="keyed"):
            restore_checkpoint(target, path)

    def test_protocol_mismatch(self, tmp_path):
        graph = _explored(make_protocol(ParityArbiterProcess, 3))
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        other = make_protocol(ParityArbiterProcess, 4)
        with pytest.raises(CheckpointMismatch, match="process"):
            load_checkpoint(path, other)

    def test_restore_into_nonempty_engine_refused(self, protocol, tmp_path):
        graph = _explored(protocol)
        path = str(tmp_path / "g.ckpt")
        save_checkpoint(graph, path)
        target = _explored(protocol, budget=50)
        with pytest.raises(CheckpointError, match="fresh"):
            restore_checkpoint(target, path)


class TestCadence:
    def test_every_levels_writes_during_exploration(
        self, protocol, tmp_path
    ):
        path = str(tmp_path / "cadence.ckpt")
        graph = GlobalConfigurationGraph(
            protocol,
            checkpoint=CheckpointConfig(path=path, every_levels=1),
        )
        graph.explore(_root(protocol), max_configurations=400)
        assert graph.stats.checkpoints_written >= 2
        assert graph.stats.checkpoint_time > 0.0
        assert graph.last_checkpoint is not None
        assert os.path.exists(path)
        # The final per-level snapshot captures the final state.
        resumed = load_checkpoint(path, protocol)
        assert resumed.fingerprint() == graph.fingerprint()

    def test_no_config_means_no_writes(self, protocol):
        graph = _explored(protocol)
        assert graph.stats.checkpoints_written == 0
        assert graph.last_checkpoint is None

    def test_zero_cadence_only_writes_forced_snapshots(
        self, protocol, tmp_path
    ):
        path = str(tmp_path / "final-only.ckpt")
        graph = GlobalConfigurationGraph(
            protocol,
            checkpoint=CheckpointConfig(path=path),
        )
        graph.explore(_root(protocol), max_configurations=400)
        assert graph.stats.checkpoints_written == 0
        assert not os.path.exists(path)
