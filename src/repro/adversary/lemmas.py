"""Executable checkers for Lemmas 1, 2, and 3.

Each checker turns one of the paper's lemmas into a decision procedure
over a finite protocol instance and returns a certificate (see
:mod:`repro.adversary.certificates`) that can be re-verified by replay.

* **Lemma 1** (commutativity): :func:`commutativity_diamond` closes the
  Figure-1 diamond for any two disjoint applicable schedules;
  :func:`random_disjoint_schedules` generates test instances.
* **Lemma 2** (bivalent initial configuration): :func:`find_lemma2`
  classifies all 2^N initial configurations and extracts either a
  bivalent one (with witness schedules) or — when the protocol's
  decisions are a pure function of its inputs — the adjacent
  0-valent/1-valent *boundary pair* that the proof of Lemma 2
  manipulates, which is exactly what the adversary's fault mode needs.
* **Lemma 3** (bivalent successor): :func:`find_bivalent_successor`
  searches 𝒞 (the configurations reachable without applying ``e``) for a
  member whose ``e``-successor is bivalent.  When the protocol is not
  totally correct the search can fail; the failure analysis then
  recovers the proof's Case-2 structure — a configuration ``E0`` and a
  pivot event ``e'`` of the *same* process with opposite-valent
  ``e``-successors — which certifies that silencing that process stalls
  the protocol.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.errors import AdversaryStuck, FLPError
from repro.core.events import Event, Schedule
from repro.core.protocol import Protocol
from repro.core.valency import Valency, ValencyAnalyzer
from repro.adversary.certificates import (
    CommutativityWitness,
    Lemma2Certificate,
    Lemma3Case,
    Lemma3Certificate,
)

__all__ = [
    "commutativity_diamond",
    "random_disjoint_schedules",
    "Lemma2Result",
    "find_lemma2",
    "Lemma3Failure",
    "Lemma3Outcome",
    "find_bivalent_successor",
]


# ---------------------------------------------------------------------------
# Lemma 1
# ---------------------------------------------------------------------------


def commutativity_diamond(
    protocol: Protocol,
    configuration: Configuration,
    sigma1: Schedule,
    sigma2: Schedule,
) -> CommutativityWitness:
    """Close the Figure-1 diamond for two disjoint applicable schedules.

    Raises
    ------
    ValueError
        If the schedules share a stepping process (Lemma 1's hypothesis
        is violated, so the lemma asserts nothing).
    FLPError
        If the two application orders disagree — impossible under these
        semantics, so it would indicate a model bug.
    """
    if not sigma1.is_disjoint_from(sigma2):
        raise ValueError(
            "Lemma 1 requires the schedules' process sets to be disjoint: "
            f"{sorted(sigma1.processes())} vs {sorted(sigma2.processes())}"
        )
    corner1 = protocol.apply_schedule(configuration, sigma1)
    corner2 = protocol.apply_schedule(configuration, sigma2)
    meet_via_1 = protocol.apply_schedule(corner1, sigma2)
    meet_via_2 = protocol.apply_schedule(corner2, sigma1)
    if meet_via_1 != meet_via_2:
        raise FLPError(
            "Lemma 1 violated: disjoint schedules did not commute — "
            "this indicates a bug in the step semantics"
        )
    return CommutativityWitness(
        configuration=configuration,
        sigma1=sigma1,
        sigma2=sigma2,
        corner1=corner1,
        corner2=corner2,
        meet=meet_via_1,
    )


def random_disjoint_schedules(
    protocol: Protocol,
    configuration: Configuration,
    rng: random.Random,
    max_events: int = 6,
) -> tuple[Schedule, Schedule]:
    """Generate two random disjoint schedules, each applicable to
    *configuration*.

    The roster is split into two nonempty groups; each schedule walks
    forward from *configuration* using only its group's events (so the
    disjointness and applicability hypotheses of Lemma 1 hold by
    construction — applicability of each to the *other's* corner is then
    the lemma's content).
    """
    names = list(protocol.process_names)
    rng.shuffle(names)
    split = rng.randint(1, len(names) - 1)
    groups = (frozenset(names[:split]), frozenset(names[split:]))

    schedules: list[Schedule] = []
    for group in groups:
        events: list[Event] = []
        current = configuration
        for _ in range(rng.randint(0, max_events)):
            candidates = [
                event
                for event in protocol.enabled_events(current)
                if event.process in group
            ]
            if not candidates:
                break
            event = rng.choice(candidates)
            events.append(event)
            current = protocol.apply_event(current, event)
        schedules.append(Schedule(events))
    return schedules[0], schedules[1]


# ---------------------------------------------------------------------------
# Lemma 2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lemma2Result:
    """Everything the Lemma 2 search learned about the initial hypercube.

    Attributes
    ----------
    certificate:
        A bivalent initial configuration with witness — present exactly
        when the protocol has one (Lemma 2 guarantees it for totally
        correct protocols; order-insensitive protocols have none).
    boundary:
        ``(C0, C1, p)``: adjacent initial configurations, 0-valent and
        1-valent respectively, differing only in process *p*'s input.
        This is the proof's pivot object and the adversary's fault-mode
        entry point.  Present whenever the classification contains both
        univalent classes with an adjacent pair.
    none_valent:
        An initial configuration from which *no* decision is reachable,
        if one exists (broken protocols only): the adversary's dead-end
        shortcut.
    classification:
        Valency of every initial configuration, keyed by input vector
        (in :attr:`Protocol.process_names` order).
    """

    certificate: Lemma2Certificate | None
    boundary: tuple[Configuration, Configuration, str] | None
    none_valent: Configuration | None
    classification: dict[tuple[int, ...], Valency]


def _adjacent_pairs(
    protocol: Protocol,
) -> list[tuple[Configuration, Configuration, str]]:
    """All ordered pairs of initial configurations differing in exactly
    one process's input, tagged with that process's name."""
    names = protocol.process_names
    pairs = []
    n = len(names)
    for bits in range(2**n):
        vector = [(bits >> i) & 1 for i in range(n)]
        for index in range(n):
            if vector[index] == 0:
                flipped = list(vector)
                flipped[index] = 1
                pairs.append(
                    (
                        protocol.initial_configuration(vector),
                        protocol.initial_configuration(flipped),
                        names[index],
                    )
                )
    return pairs


def find_lemma2(
    protocol: Protocol, analyzer: ValencyAnalyzer
) -> Lemma2Result:
    """Classify the initial hypercube and extract Lemma 2's objects."""
    classification = analyzer.classify_initials()

    bivalent_certificate: Lemma2Certificate | None = None
    none_valent: Configuration | None = None
    for initial in protocol.initial_configurations():
        valency = classification[protocol.input_vector(initial)]
        if valency is Valency.NONE and none_valent is None:
            none_valent = initial
        if valency is Valency.BIVALENT and bivalent_certificate is None:
            # Pure lookup: the classification above already grew the
            # shared graph past this initial, so the witness schedules
            # are read off recorded edges (no second exploration).
            witness = analyzer.bivalence_witness(initial)
            if witness is None:  # pragma: no cover - guarded by valency
                continue
            bivalent_certificate = Lemma2Certificate(
                bivalent_initial=initial, witness=witness
            )

    boundary: tuple[Configuration, Configuration, str] | None = None
    adjacent_zero = adjacent_one = None
    differing = None
    for low, high, process in _adjacent_pairs(protocol):
        low_valency = classification[protocol.input_vector(low)]
        high_valency = classification[protocol.input_vector(high)]
        pair = {low_valency, high_valency}
        if pair == {Valency.ZERO_VALENT, Valency.ONE_VALENT}:
            if low_valency is Valency.ZERO_VALENT:
                boundary = (low, high, process)
                adjacent_zero, adjacent_one = low, high
            else:
                boundary = (high, low, process)
                adjacent_zero, adjacent_one = high, low
            differing = process
            break

    if bivalent_certificate is not None and adjacent_zero is not None:
        bivalent_certificate = Lemma2Certificate(
            bivalent_initial=bivalent_certificate.bivalent_initial,
            witness=bivalent_certificate.witness,
            adjacent_zero_valent=adjacent_zero,
            adjacent_one_valent=adjacent_one,
            differing_process=differing,
        )

    return Lemma2Result(
        certificate=bivalent_certificate,
        boundary=boundary,
        none_valent=none_valent,
        classification=classification,
    )


# ---------------------------------------------------------------------------
# Lemma 3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lemma3Failure:
    """The Case-2 structure recovered when no bivalent successor exists.

    ``anchor`` (the proof's ``C0``) lies in 𝒞; ``pivot_event`` (``e'``)
    steps the *same* process as the forced event ``e``, and the
    ``e``-successors of ``anchor`` and ``pivot_event(anchor)`` are
    univalent with *opposite* values.  By the paper's Case-2 argument, no
    deciding run from ``anchor`` avoids that process — silencing it
    stalls the protocol forever.
    """

    anchor: Configuration
    pivot_event: Event
    schedule_to_anchor: Schedule
    anchor_valency: Valency
    neighbor_valency: Valency
    faulty_process: str
    configurations_examined: int


@dataclass(frozen=True)
class Lemma3Outcome:
    """Result of the bivalent-successor search for one ``(C, e)`` pair.

    Exactly one of ``certificate`` (success), ``failure`` (Case-2
    structure), or ``dead_end`` (a NONE-valent successor — broken
    protocols only) is set; all ``None`` means the search was inexact
    (budget exhausted or unknown valencies) and nothing can be asserted.
    """

    certificate: Lemma3Certificate | None = None
    failure: Lemma3Failure | None = None
    dead_end: tuple[Schedule, Configuration] | None = None
    exact: bool = True
    configurations_examined: int = 0

    @property
    def found(self) -> bool:
        return self.certificate is not None


def find_bivalent_successor(
    protocol: Protocol,
    analyzer: ValencyAnalyzer,
    configuration: Configuration,
    event: Event,
    max_configurations: int = 100_000,
) -> Lemma3Outcome:
    """Search 𝒞 for a configuration whose ``event``-successor is bivalent.

    𝒞 is explored breadth-first *incrementally*: each discovered member's
    ``e``-successor is classified immediately, so the common case — a
    bivalent successor within a step or two of C — returns without
    materializing the rest of 𝒞, and the certificate's avoiding schedule
    is shortest by BFS order.  Only the failure analysis (Case 2) needs
    𝒞 in full.

    The paper's observation that "e is applicable to every E ∈ 𝒞" holds
    by construction: the only way to consume ``e``'s message is to apply
    ``e`` itself, which the avoidance constraint forbids.

    Per-stage cost rides on the analyzer's shared engine: every
    ``analyzer.valency(successor)`` classifies against the one global
    configuration graph, so successive stages of the staged adversary —
    whose 𝒞 regions overlap heavily — resolve almost entirely from
    cache instead of re-exploring (watch ``analyzer.stats``).
    """
    cache = analyzer.transitions

    # Incremental BFS state.  parents[i] = (parent id, edge event).
    members: list[Configuration] = [configuration]
    index: dict[Configuration, int] = {configuration: 0}
    parents: dict[int, tuple[int, Event]] = {}
    edges: list[tuple[int, Event, int]] = []
    queue: deque[int] = deque([0])
    successor_valency: dict[int, Valency] = {}
    dead_end_node: int | None = None
    exact = True

    def path_to(node: int) -> Schedule:
        steps: list[Event] = []
        current = node
        while current != 0:
            parent, via = parents[current]
            steps.append(via)
            current = parent
        steps.reverse()
        return Schedule(steps)

    def classify(node: int) -> Valency | None:
        """Classify e(members[node]); returns BIVALENT's outcome early."""
        member = members[node]
        if not event.is_applicable(member):  # pragma: no cover - invariant
            raise FLPError(
                f"event {event!r} became inapplicable inside 𝒞 — "
                "model invariant violated"
            )
        successor = cache.apply(protocol, member, event)
        valency = analyzer.valency(successor)
        successor_valency[node] = valency
        return valency

    while queue:
        node = queue.popleft()
        valency = classify(node)
        if valency is Valency.BIVALENT:
            avoiding = path_to(node)
            successor = cache.apply(protocol, members[node], event)
            witness = analyzer.bivalence_witness(successor)
            assert witness is not None  # valency said BIVALENT
            certificate = Lemma3Certificate(
                configuration=configuration,
                event=event,
                avoiding_schedule=avoiding,
                result=successor,
                witness=witness,
                case=(
                    Lemma3Case.IMMEDIATE
                    if len(avoiding) == 0
                    else Lemma3Case.DEFERRED
                ),
                configurations_examined=len(members),
                search_depth=len(avoiding),
            )
            return Lemma3Outcome(
                certificate=certificate,
                exact=True,
                configurations_examined=len(members),
            )
        if valency is Valency.UNKNOWN:
            exact = False
        elif valency is Valency.NONE and dead_end_node is None:
            dead_end_node = node
        # Expand the node within 𝒞 (never applying `event`).
        for candidate in protocol.enabled_events(members[node]):
            if candidate == event:
                continue
            successor = cache.apply(protocol, members[node], candidate)
            existing = index.get(successor)
            if existing is None:
                if len(members) >= max_configurations:
                    exact = False
                    continue
                existing = len(members)
                members.append(successor)
                index[successor] = existing
                parents[existing] = (node, candidate)
                queue.append(existing)
            edges.append((node, candidate, existing))

    if dead_end_node is not None:
        return Lemma3Outcome(
            dead_end=(
                path_to(dead_end_node).then(event),
                cache.apply(protocol, members[dead_end_node], event),
            ),
            exact=exact,
            configurations_examined=len(members),
        )

    if not exact:
        return Lemma3Outcome(
            exact=False, configurations_examined=len(members)
        )

    # No bivalent successor anywhere in e(𝒞): recover the Case-2 pivot.
    for source, via, target in edges:
        source_valency = successor_valency[source]
        target_valency = successor_valency[target]
        if (
            source_valency.is_univalent
            and target_valency.is_univalent
            and source_valency is not target_valency
        ):
            if via.process != event.process:
                # Lemma 1 makes this impossible: with p' != p the
                # diamond would give a v-valent successor of a
                # (1-v)-valent configuration.
                raise FLPError(
                    "Lemma 3 Case-1 anomaly: opposite-valent neighbors "
                    f"via foreign process {via.process!r} — model bug"
                )
            return Lemma3Outcome(
                failure=Lemma3Failure(
                    anchor=members[source],
                    pivot_event=via,
                    schedule_to_anchor=path_to(source),
                    anchor_valency=source_valency,
                    neighbor_valency=target_valency,
                    faulty_process=event.process,
                    configurations_examined=len(members),
                ),
                exact=True,
                configurations_examined=len(members),
            )

    # All successors univalent with the SAME value while C is bivalent
    # would contradict the Fi argument of the proof; reaching here means
    # C was not bivalent in the first place.
    raise AdversaryStuck(
        f"no bivalent successor, no opposite-valent pivot for {event!r}: "
        "the starting configuration is not bivalent (or valency data is "
        "inconsistent)"
    )
