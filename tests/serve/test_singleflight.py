"""Single-flight dedup and the persistent result cache.

The PR's contract: two concurrent identical submissions trigger exactly
one exploration and the second response is byte-identical to the first;
a later identical query is served from the cache (same bytes again),
including by a *different* daemon process on the same spool.
"""

import json
import threading
import time


def _query_bytes(client, spec, out, index):
    response = client.query(spec)
    out[index] = (response.status, response.headers, response.body)


SPEC = {"verb": "check", "protocol": "benor", "n": 3, "budget": 15_000}


class TestSingleFlight:
    def test_concurrent_identical_jobs_run_once(self, daemon):
        client = daemon().client
        results: dict[int, tuple] = {}
        threads = [
            threading.Thread(
                target=_query_bytes, args=(client, SPEC, results, i)
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
            time.sleep(0.05)  # let the first submission take the lead
        for thread in threads:
            thread.join(timeout=120.0)
        assert len(results) == 4

        statuses = [results[i][0] for i in range(4)]
        assert statuses == [200, 200, 200, 200]
        bodies = [results[i][2] for i in range(4)]
        # Exactly one exploration; every follower got the same bytes.
        assert all(body == bodies[0] for body in bodies)
        stats = client.stats()
        assert stats["counters"]["explorations_run"] == 1
        assert stats["counters"]["accepted"] == 1
        joins = stats["counters"]["singleflight_joins"]
        hits = stats["counters"]["cache_hits"]
        # Late starters may land after completion (cache hit) instead
        # of joining the flight; either way no second exploration.
        assert joins + hits == 3

    def test_repeat_query_is_cache_hit(self, daemon):
        client = daemon().client
        cold = client.query(SPEC)
        assert cold.headers["x-repro-cache"] == "accepted"
        warm = client.query(SPEC)
        assert warm.headers["x-repro-cache"] == "cached"
        assert warm.body == cold.body
        assert client.stats()["counters"]["explorations_run"] == 1

    def test_cache_survives_daemon_restart(self, daemon, tmp_path):
        spool = tmp_path / "shared-spool"
        first = daemon(spool=spool)
        cold = first.client.query(SPEC)
        assert cold.status == 200
        first.stop()

        second = daemon(spool=spool)
        warm = second.client.query(SPEC)
        assert warm.headers["x-repro-cache"] == "cached"
        assert warm.body == cold.body
        assert second.client.stats()["counters"]["explorations_run"] == 0

    def test_deadline_variants_share_the_cached_answer(self, daemon):
        client = daemon().client
        cold = client.query(SPEC)
        # Identical computation with a (generous) deadline attached:
        # deadlines are not part of the cache key.
        hurried = client.query({**SPEC, "max_seconds": 120})
        assert hurried.headers["x-repro-cache"] == "cached"
        assert hurried.body == cold.body

    def test_distinct_specs_do_not_collide(self, daemon):
        client = daemon().client
        a = client.query(
            {"verb": "check", "protocol": "parity-arbiter", "n": 3}
        )
        b = client.query(
            {
                "verb": "check",
                "protocol": "parity-arbiter",
                "n": 3,
                "budget": 777,
            }
        )
        assert a.headers["x-repro-cache"] == "accepted"
        assert b.headers["x-repro-cache"] == "accepted"
        assert json.loads(a.body)["budget"] != json.loads(b.body)["budget"]
