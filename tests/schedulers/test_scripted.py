"""Tests for the scripted replay scheduler."""

from repro.core.events import NULL, Event, Schedule
from repro.core.simulation import StopCondition, simulate
from repro.schedulers import RoundRobinScheduler, ScriptedScheduler


class TestScript:
    def test_plays_script_in_order(self, arbiter3):
        script = Schedule([Event("p2", NULL), Event("p1", NULL)])
        scheduler = ScriptedScheduler(script)
        result = simulate(
            arbiter3,
            arbiter3.initial_configuration([0, 0, 1]),
            scheduler,
            max_steps=10,
            stop=StopCondition.NEVER,
        )
        assert result.schedule == script
        assert result.stop_reason == "scheduler-exhausted"

    def test_remaining_counter(self, arbiter3):
        scheduler = ScriptedScheduler([Event("p1", NULL)])
        config = arbiter3.initial_configuration([0, 0, 1])
        assert scheduler.remaining == 1
        scheduler.next_event(arbiter3, config, 0)
        assert scheduler.remaining == 0

    def test_handoff_to_live_scheduler(self, arbiter3):
        # Replay two claim-producing steps, then let round-robin finish.
        script = [Event("p1", NULL), Event("p2", NULL)]
        scheduler = ScriptedScheduler(
            script, then=RoundRobinScheduler()
        )
        result = simulate(
            arbiter3,
            arbiter3.initial_configuration([0, 1, 0]),
            scheduler,
            max_steps=100,
            stop=StopCondition.ALL_DECIDED,
        )
        assert result.decided
        assert result.schedule[:2] == Schedule(script)

    def test_replay_certificate_then_recover(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        """The library workflow: replay the adversary's non-deciding
        prefix, then show a fair scheduler recovers from its endpoint —
        the run really was extendable either way."""
        from repro.adversary.flp import FLPAdversary

        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=10)
        scheduler = ScriptedScheduler(
            certificate.schedule, then=RoundRobinScheduler()
        )
        result = simulate(
            parity_arbiter3,
            certificate.initial,
            scheduler,
            max_steps=500,
            stop=StopCondition.ALL_DECIDED,
        )
        assert result.decided  # fairness after malice still decides
        assert result.agreement_holds

    def test_reset_replays_from_start(self, arbiter3):
        scheduler = ScriptedScheduler([Event("p1", NULL)])
        config = arbiter3.initial_configuration([0, 0, 1])
        first = scheduler.next_event(arbiter3, config, 0)
        scheduler.reset()
        assert scheduler.next_event(arbiter3, config, 0) == first

    def test_inherits_crash_plan_from_delegate(self, arbiter3):
        from repro.schedulers import CrashPlan

        inner = RoundRobinScheduler(crash_plan=CrashPlan({"p2": 0}))
        scheduler = ScriptedScheduler([], then=inner)
        assert scheduler.live_processes(arbiter3) == ("p0", "p1")
