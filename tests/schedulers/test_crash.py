"""Unit tests for crash-plan construction helpers."""

import random

import pytest

from repro.schedulers.crash import (
    initially_dead_plans,
    random_crash_plan,
    single_crash_plans,
)

NAMES = ("p0", "p1", "p2", "p3")


class TestRandomCrashPlan:
    def test_respects_max_faulty(self):
        rng = random.Random(0)
        for _ in range(50):
            plan = random_crash_plan(NAMES, max_faulty=2, max_step=10, rng=rng)
            assert len(plan.faulty) <= 2

    def test_crash_steps_in_range(self):
        rng = random.Random(1)
        for _ in range(50):
            plan = random_crash_plan(NAMES, max_faulty=4, max_step=7, rng=rng)
            assert all(0 <= t <= 7 for t in plan.crash_times.values())

    def test_zero_faults_possible(self):
        rng = random.Random(2)
        plans = [
            random_crash_plan(NAMES, max_faulty=1, max_step=5, rng=rng)
            for _ in range(60)
        ]
        assert any(not plan.faulty for plan in plans)

    def test_too_many_faults_rejected(self):
        with pytest.raises(ValueError):
            random_crash_plan(NAMES, max_faulty=5, max_step=5,
                              rng=random.Random(0))

    def test_deterministic_given_rng_state(self):
        a = random_crash_plan(NAMES, 2, 10, random.Random(42))
        b = random_crash_plan(NAMES, 2, 10, random.Random(42))
        assert a.crash_times == b.crash_times


class TestSingleCrashPlans:
    def test_cartesian_coverage(self):
        plans = single_crash_plans(NAMES, [0, 5])
        assert len(plans) == 8
        pairs = {
            (next(iter(plan.faulty)), list(plan.crash_times.values())[0])
            for plan in plans
        }
        assert ("p2", 5) in pairs

    def test_each_plan_has_exactly_one_fault(self):
        for plan in single_crash_plans(NAMES, [3]):
            assert len(plan.faulty) == 1


class TestInitiallyDeadPlans:
    def test_counts_are_binomial(self):
        assert len(initially_dead_plans(NAMES, 0)) == 1
        assert len(initially_dead_plans(NAMES, 1)) == 4
        assert len(initially_dead_plans(NAMES, 2)) == 6

    def test_all_dead_at_step_zero(self):
        for plan in initially_dead_plans(NAMES, 2):
            assert all(t == 0 for t in plan.crash_times.values())
            assert len(plan.faulty) == 2

    def test_too_many_dead_rejected(self):
        with pytest.raises(ValueError):
            initially_dead_plans(NAMES, 5)

    def test_plans_are_distinct(self):
        plans = initially_dead_plans(NAMES, 2)
        assert len({plan.faulty for plan in plans}) == len(plans)
