"""The paper's figures, regenerated from *actual computed* configurations.

FLP's three figures are proof diagrams:

* **Figure 1** — the Lemma 1 commutativity diamond;
* **Figure 2** — Lemma 3, Case 1: neighbors ``C0 --e'--> C1`` whose
  ``e``-successors would have to be 0- and 1-valent, closed into an
  impossible diamond by Lemma 1;
* **Figure 3** — Lemma 3, Case 2: the deciding run σ from ``C0``
  avoiding ``p``, against which ``e`` and ``e'`` commute, forcing the
  decided endpoint ``A`` to be bivalent.

This module renders each figure as ASCII art *instantiated with real
configurations produced by the checkers* — the diagram you see is not a
stock picture but a replayable instance — plus a Graphviz DOT export of
any explored configuration graph with valency coloring.
"""

from __future__ import annotations

from repro.core.exploration import ConfigurationGraph
from repro.core.valency import Valency, ValencyAnalyzer
from repro.adversary.certificates import CommutativityWitness
from repro.adversary.lemmas import Lemma3Failure

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "graph_to_dot",
    "hypercube_diagram",
]


def _label(schedule_or_event) -> str:
    from repro.core.events import Event, Schedule

    if isinstance(schedule_or_event, Event):
        value = (
            "0" if schedule_or_event.is_null_delivery
            else repr(schedule_or_event.value)
        )
        return f"({schedule_or_event.process},{value})"
    if isinstance(schedule_or_event, Schedule):
        return f"σ({len(schedule_or_event)} events)"
    return str(schedule_or_event)


def figure1(witness: CommutativityWitness) -> str:
    """Render the Lemma 1 diamond from a concrete commutativity witness.

    ::

                      C
                σ1  /   \\  σ2
                  C1     C2
                σ2  \\   /  σ1
                      C3
    """
    s1 = _label(witness.sigma1)
    s2 = _label(witness.sigma2)
    return "\n".join(
        [
            "Figure 1 (Lemma 1): disjoint schedules commute",
            "",
            "                  C",
            f"        σ1={s1:<14s} σ2={s2}",
            "               /     \\",
            "             C1       C2",
            "               \\     /",
            f"        σ2={s2:<14s} σ1={s1}",
            "                  C3",
            "",
            f"  C  = {witness.configuration!r}",
            f"  C1 = {witness.corner1!r}",
            f"  C2 = {witness.corner2!r}",
            f"  C3 = {witness.meet!r}",
            "  verified: σ2(σ1(C)) == σ1(σ2(C)) == C3",
        ]
    )


def figure2(failure: Lemma3Failure, forced_event) -> str:
    """Render the Case-1/Case-2 neighborhood of a Lemma-3 failure.

    The found structure is the paper's Figure-2 situation: neighbors
    ``C0 --e'--> C1`` with opposite-valent ``e``-successors ``D0, D1``.
    Lemma 1 rules out ``p' != p`` (the diamond would make ``D1`` a
    successor of ``D0``), which is why the failure's pivot is always a
    step of the forced event's own process.
    """
    e = _label(forced_event)
    ep = _label(failure.pivot_event)
    return "\n".join(
        [
            "Figure 2 (Lemma 3, neighbor structure at a failure):",
            "",
            f"        C0 ──e'={ep}──▶ C1",
            f"        │                      │",
            f"      e={e:<18s}  e={e}",
            f"        ▼                      ▼",
            f"        D0 ({failure.anchor_valency.value})"
            f"          D1 ({failure.neighbor_valency.value})",
            "",
            f"  C0 = {failure.anchor!r}",
            f"  pivot process p = p' = {failure.faulty_process!r} "
            "(Lemma 1 forbids p' != p here)",
        ]
    )


def figure3(failure: Lemma3Failure, forced_event) -> str:
    """Render the Case-2 square: why silencing ``p`` stalls the protocol.

    Any deciding run σ from ``C0`` in which ``p`` takes no steps would
    commute (Lemma 1) with both ``e`` and ``e'``, making its endpoint
    ``A`` an ancestor of both a 0-valent ``E0`` and a 1-valent ``E1`` —
    but a decided configuration cannot be bivalent.  So no such σ
    exists, and the adversary's fault mode is sound.
    """
    e = _label(forced_event)
    ep = _label(failure.pivot_event)
    p = failure.faulty_process
    return "\n".join(
        [
            "Figure 3 (Lemma 3, Case 2): no deciding run avoids p",
            "",
            f"        C0 ───────e'={ep}──────▶ C1",
            f"        │ \\                            │",
            f"        │  σ (p={p} takes no steps)    │",
            f"        │   \\                          │",
            f"      e={e}  ▼                      e={e}",
            f"        ▼     A (deciding?!)            ▼",
            f"        D0 ── σ ──▶ E0={_label('σ(D0)')} "
            f"   D1 ── σ ──▶ E1",
            "",
            f"  e(A)  = σ(D0) is {failure.anchor_valency.value}",
            f"  e(e'(A)) = σ(D1) is {failure.neighbor_valency.value}",
            "  ⇒ A reaches both decision values ⇒ A is bivalent,",
            "    contradicting that the run to A was deciding.",
            f"  ⇒ silencing {p!r} from C0 yields an admissible,",
            "    never-deciding run (the adversary's fault mode).",
        ]
    )


_VALENCY_GLYPHS = {
    Valency.BIVALENT: "±",
    Valency.ZERO_VALENT: "0",
    Valency.ONE_VALENT: "1",
    Valency.NONE: "∅",
    Valency.UNKNOWN: "?",
}


def hypercube_diagram(
    classification: dict[tuple[int, ...], Valency]
) -> str:
    """Render Lemma 2's initial hypercube as an adjacency walk.

    Input vectors are listed in Gray-code order, so consecutive lines
    are *adjacent* initial configurations (they differ in exactly one
    process's input) — the chain the proof of Lemma 2 walks.  The
    valency column makes the 0-valent/1-valent boundary (or the
    bivalent interior) visible at a glance.
    """
    if not classification:
        return "(empty classification)"
    n = len(next(iter(classification)))
    lines = ["inputs  valency   (consecutive rows are adjacent)"]
    previous = None
    for index in range(2**n):
        gray = index ^ (index >> 1)
        vector = tuple((gray >> i) & 1 for i in range(n))
        valency = classification[vector]
        bits = "".join(str(b) for b in vector)
        flip = ""
        if previous is not None:
            changed = [
                i for i in range(n) if vector[i] != previous[i]
            ]
            flip = f"   (flip p{changed[0]})"
        glyph = _VALENCY_GLYPHS[valency]
        lines.append(f"  {bits}    [{glyph}] {valency.value}{flip}")
        previous = vector
    return "\n".join(lines)


_VALENCY_COLORS = {
    Valency.BIVALENT: "gold",
    Valency.ZERO_VALENT: "lightblue",
    Valency.ONE_VALENT: "lightpink",
    Valency.NONE: "gray",
    Valency.UNKNOWN: "white",
}


def graph_to_dot(
    graph: ConfigurationGraph,
    analyzer: ValencyAnalyzer | None = None,
    max_nodes: int = 400,
) -> str:
    """Export an explored configuration graph as Graphviz DOT.

    Nodes are colored by valency when an analyzer is supplied (gold =
    bivalent, blue = 0-valent, pink = 1-valent).  The bivalent→univalent
    frontier — the "critical steps" the adversary must forever avoid —
    is exactly the gold/colored boundary in the rendered picture.
    """
    lines = [
        "digraph configurations {",
        "  rankdir=TB;",
        '  node [shape=circle, style=filled, fontsize=9];',
    ]
    count = min(len(graph.configurations), max_nodes)
    for node in range(count):
        configuration = graph.configurations[node]
        color = "white"
        label = str(node)
        if analyzer is not None:
            valency = analyzer.valency(configuration)
            color = _VALENCY_COLORS[valency]
            if valency.is_univalent:
                label = f"{node}\\n{valency.decided_value}-val"
            elif valency is Valency.BIVALENT:
                label = f"{node}\\nbi"
        lines.append(
            f'  n{node} [label="{label}", fillcolor="{color}"];'
        )
    for source, event, target in graph.iter_edges():
        if source >= count or target >= count:
            continue
        value = "0̸" if event.is_null_delivery else str(event.value)
        lines.append(
            f'  n{source} -> n{target} '
            f'[label="{event.process}:{value}", fontsize=7];'
        )
    lines.append("}")
    return "\n".join(lines)
