"""Benchmark-suite helpers.

Every experiment bench times the full experiment function (quick mode)
and re-asserts the paper-shape expectations, so `pytest benchmarks/
--benchmark-only` both measures the harness and regenerates every table
and figure of EXPERIMENTS.md.  Rendered tables are attached to each
benchmark's ``extra_info`` and printed (visible with ``-s``).
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_experiment


@pytest.fixture
def run_and_render():
    """Run one experiment under the benchmark clock and print its table."""

    def runner(benchmark, exp_id: str, rounds: int = 2):
        result = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"quick": True, "seed": 0},
            rounds=rounds,
            iterations=1,
        )
        benchmark.extra_info["rows"] = len(result.rows)
        benchmark.extra_info["exp_id"] = exp_id
        print()
        print(result.render())
        return result

    return runner
