"""Ben-Or's randomized consensus — the conclusion's first escape hatch.

The paper closes by noting that the impossibility "point[s] up the need
for ... less stringent requirements on the solution ... (For example,
termination might be required only with probability 1.)", citing Ben-Or's
"Another advantage of free choice" (reference [2]).  This module
implements that protocol for the crash-fault model with ``f < N/2``.

Each round ``r`` has two phases:

* **Report.**  Broadcast ``(R, r, x)``; wait for ``N - f`` round-``r``
  reports (your own included).  If more than ``N/2`` of them carry the
  same value ``v``, propose ``v``; otherwise propose ⊥.
* **Propose.**  Broadcast ``(P, r, proposal)``; wait for ``N - f``
  round-``r`` proposals.  If some value ``v ≠ ⊥`` appears at least
  ``f + 1`` times, *decide* ``v`` (and broadcast a courtesy ``D``
  message so laggards terminate too).  Else if any ``v ≠ ⊥`` appears,
  adopt ``x = v``; else flip a coin for ``x``.  Continue to round
  ``r + 1``.

Randomness vs. the FLP model: FLP processes are deterministic automata —
that is precisely the hypothesis Ben-Or escapes.  To keep our processes
*mechanically* deterministic (hashable states, reproducible runs), the
coin is a pseudo-random bit keyed by ``(protocol seed, process name,
round)`` — i.e. each process carries a private random tape fixed in
advance.  Against the schedulers in this library (which do not read the
tapes) the termination-with-probability-1 behaviour is preserved, and
experiment E7 measures it by varying the seed; a tape-reading adversary
could stall any *fixed* tape, which is exactly why Ben-Or's guarantee is
probabilistic and not certain.

State grows with the round number, so this protocol is for forward
simulation; exact valency analysis is reserved for the finite zoo.
"""

from __future__ import annotations

import hashlib
from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["BenOrProcess"]

#: The ⊥ ("no proposal") marker of phase 2.
BOTTOM = "?"


def _coin(seed: int, name: str, round_number: int) -> int:
    """A deterministic pseudo-random bit: the process's private tape."""
    digest = hashlib.sha256(
        f"{seed}:{name}:{round_number}".encode()
    ).digest()
    return digest[0] & 1


class BenOrProcess(ConsensusProcess):
    """One process of Ben-Or's randomized binary consensus.

    Parameters
    ----------
    f:
        Number of crash faults tolerated; must satisfy ``f < N/2``.
        Defaults to the maximum, ``⌈N/2⌉ - 1``.
    seed:
        Seed of the private random tapes (vary per experiment trial).
    coin:
        ``"private"`` (default, Ben-Or's protocol): the coin is keyed
        by the process name, so processes flip independently — and the
        automaton is *not* permutation-equivariant.  ``"round"`` keys
        the coin by the round number alone (every process flips the
        same bit, a degenerate common coin), which makes the automaton
        fully symmetric: the variant declares ``symmetric = True`` and
        is what the symmetry-quotient benchmarks and the n=5 zoo
        instances explore.  The phase-2 adoption rule is already
        name-free — in any round all non-⊥ proposals are equal (two
        different majorities of one broadcast multiset cannot both
        exceed N/2), so ``concrete[0]`` is renaming-robust.
    """

    def __init__(
        self,
        name: str,
        peers,
        f: int | None = None,
        seed: int = 0,
        coin: str = "private",
    ):
        super().__init__(name, peers)
        max_f = (self.n - 1) // 2
        self.f = f if f is not None else max_f
        if not 0 <= self.f <= max_f:
            raise ValueError(
                f"Ben-Or requires 0 <= f < N/2; N={self.n} allows "
                f"f <= {max_f}, got {self.f}"
            )
        if coin not in ("private", "round"):
            raise ValueError(
                f"coin must be 'private' or 'round', got {coin!r}"
            )
        self.seed = seed
        self.coin = coin
        #: A shared per-round coin removes the only name dependence in
        #: the automaton, so the variant is safe for --symmetry.
        self.symmetric = coin == "round"

    @property
    def quorum(self) -> int:
        """N - f: messages awaited in each phase."""
        return self.n - self.f

    def _coin_flip(self, round_number: int) -> int:
        """The round's coin.  Ben-Or: a *private* bit per process (the
        tape).  ``coin="round"`` drops the name from the key — one
        shared bit per round.  Subclasses may substitute a genuine
        shared coin (see :mod:`repro.protocols.common_coin`)."""
        if self.coin == "round":
            return _coin(self.seed, "", round_number)
        return _coin(self.seed, self.name, round_number)

    def initial_data(self, input_value: int) -> Hashable:
        # (started, round, phase, current estimate x, reports)
        # reports: frozenset of (kind, round, sender, value)
        return (False, 1, 1, input_value, frozenset())

    # -- helpers ---------------------------------------------------------------

    def _round_messages(
        self,
        reports: frozenset[tuple[str, int, str, Hashable]],
        kind: str,
        round_number: int,
    ) -> tuple[Hashable, ...]:
        """Values of all *kind* messages for *round_number*, by sender."""
        return tuple(
            value
            for message_kind, r, _sender, value in sorted(
                reports, key=lambda item: item[2]
            )
            if message_kind == kind and r == round_number
        )

    # -- transition ---------------------------------------------------------------

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        started, round_number, phase, x, reports = state.data
        sends: list = []

        if not started:
            started = True
            sends.extend(
                self.broadcast(self.others, ("R", round_number, self.name, x))
            )
            reports = reports | {("R", round_number, self.name, x)}

        if isinstance(message_value, tuple) and message_value:
            kind = message_value[0]
            if kind == "D":
                # Courtesy decision notice: adopt it and stop.
                new_state = state.with_data(
                    (started, round_number, phase, x, reports)
                )
                if not new_state.decided:
                    new_state = new_state.with_decision(message_value[1])
                return Transition(new_state, tuple(sends))
            if kind in ("R", "P"):
                reports = reports | {message_value}

        if state.decided:
            return Transition(
                state.with_data((started, round_number, phase, x, reports)),
                tuple(sends),
            )

        # Phase progression may cascade (a buffered backlog can satisfy
        # several thresholds), but each step handles at most one phase
        # change: the next null delivery continues the cascade, keeping
        # single steps small and the automaton honest.
        if phase == 1:
            round_reports = self._round_messages(reports, "R", round_number)
            if len(round_reports) >= self.quorum:
                ones = sum(1 for value in round_reports if value == 1)
                zeros = sum(1 for value in round_reports if value == 0)
                if ones * 2 > self.n:
                    proposal: Hashable = 1
                elif zeros * 2 > self.n:
                    proposal = 0
                else:
                    proposal = BOTTOM
                phase = 2
                message = ("P", round_number, self.name, proposal)
                sends.extend(self.broadcast(self.others, message))
                reports = reports | {message}
        elif phase == 2:
            proposals = self._round_messages(reports, "P", round_number)
            if len(proposals) >= self.quorum:
                concrete = [v for v in proposals if v != BOTTOM]
                decided_value: int | None = None
                for candidate in (0, 1):
                    if concrete.count(candidate) >= self.f + 1:
                        decided_value = candidate
                        break
                new_state = state.with_data(
                    (started, round_number, phase, x, reports)
                )
                if decided_value is not None:
                    new_state = new_state.with_decision(decided_value)
                    sends.extend(
                        self.broadcast(self.others, ("D", decided_value))
                    )
                    return Transition(new_state, tuple(sends))
                if concrete:
                    x = concrete[0]
                else:
                    x = self._coin_flip(round_number)
                round_number += 1
                phase = 1
                message = ("R", round_number, self.name, x)
                sends.extend(self.broadcast(self.others, message))
                reports = reports | {message}

        new_state = state.with_data(
            (started, round_number, phase, x, reports)
        )
        return Transition(new_state, tuple(sends))
