"""Messages and the nondeterministic message buffer (paper, Section 2).

A *message* is a pair ``(p, m)`` where ``p`` names the destination process
and ``m`` is a message value drawn from a fixed universe ``M``.  The
*message buffer* is a multiset of messages that have been sent but not yet
delivered.  It supports two abstract operations:

``send(p, m)``
    places ``(p, m)`` in the buffer;

``receive(p)``
    either deletes some message ``(p, m)`` from the buffer and returns
    ``m``, or returns the special null marker and leaves the buffer
    unchanged.

The *choice* of which message to deliver (or whether to return null) is
the nondeterminism of the message system; in flpkit that choice is made
by a :class:`~repro.schedulers.base.Scheduler`, so the buffer itself is a
pure immutable multiset value.  Immutability is essential: configurations
embed their buffer, and Lemma 1's commutativity claim is a literal
equality between configurations.

Note that the buffer carries no timestamps.  The fairness bookkeeping of
the paper's Theorem-1 construction ("the message buffer is ordered
according to the time the messages were sent") belongs to the adversary's
strategy state, not to the configuration — two configurations reached by
commuting disjoint schedules must compare equal (Lemma 1) even though
their messages were sent in different global orders.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.core.errors import InvalidEvent

__all__ = ["Message", "MessageBuffer"]


class Message:
    """An addressed message ``(p, m)``: destination process + value.

    Both fields are immutable; the value must be hashable.  Protocols that
    need to know who *sent* a message embed the sender in the value ``m``
    (the paper's model does the same — a message is only a destination and
    a value).
    """

    __slots__ = ("destination", "value", "_hash")

    def __init__(self, destination: str, value: Hashable):
        object.__setattr__(self, "destination", destination)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((destination, value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Message is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.destination == other.destination and self.value == other.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Reconstruct through __init__ so the cached hash is recomputed
        # in the unpickling process — str hashes vary per PYTHONHASHSEED,
        # so a pickled ``_hash`` would be wrong across process boundaries.
        return (Message, (self.destination, self.value))

    def __repr__(self) -> str:
        return f"Message({self.destination!r}, {self.value!r})"


class MessageBuffer:
    """An immutable multiset of :class:`Message`.

    All mutating operations return a *new* buffer; the receiver is never
    modified.  Equality and hashing are by multiset contents, which makes
    buffers usable as components of hashable configurations.
    """

    __slots__ = ("_counts", "_size", "_hash")

    def __init__(self, counts: Mapping[Message, int] | None = None):
        """Build a buffer from a ``message -> multiplicity`` mapping.

        Entries with non-positive multiplicity are rejected rather than
        silently dropped so that construction bugs surface early.
        """
        clean: dict[Message, int] = {}
        if counts:
            for message, count in counts.items():
                if not isinstance(count, int) or count <= 0:
                    raise ValueError(
                        f"multiplicity of {message!r} must be a positive "
                        f"int, got {count!r}"
                    )
                clean[message] = count
        self._counts = clean
        self._size = sum(clean.values())
        self._hash = hash(frozenset(clean.items()))

    # -- constructors -----------------------------------------------------

    @classmethod
    def _trusted(cls, counts: dict) -> "MessageBuffer":
        """Internal: adopt a known-valid, never-shared counts dict
        without the validation copy.  Only for hot paths that build the
        dict themselves (the symmetry canonicalizer's image path); all
        public construction goes through ``__init__``."""
        buffer = cls.__new__(cls)
        buffer._counts = counts
        buffer._size = sum(counts.values())
        buffer._hash = hash(frozenset(counts.items()))
        return buffer

    @classmethod
    def empty(cls) -> "MessageBuffer":
        """The empty buffer (the buffer of every initial configuration)."""
        return _EMPTY

    @classmethod
    def of(cls, messages: Iterable[Message]) -> "MessageBuffer":
        """Build a buffer containing each message in *messages* once per
        occurrence (duplicates accumulate multiplicity)."""
        counts: dict[Message, int] = {}
        for message in messages:
            counts[message] = counts.get(message, 0) + 1
        return cls(counts)

    # -- multiset operations ----------------------------------------------

    def send(self, message: Message) -> "MessageBuffer":
        """Return a new buffer with one more copy of *message*."""
        counts = dict(self._counts)
        counts[message] = counts.get(message, 0) + 1
        return MessageBuffer(counts)

    def send_all(self, messages: Iterable[Message]) -> "MessageBuffer":
        """Return a new buffer with every message in *messages* added.

        This models the paper's atomic broadcast: a process's single step
        may place an arbitrary finite set of messages in the buffer.
        """
        counts = dict(self._counts)
        for message in messages:
            counts[message] = counts.get(message, 0) + 1
        if len(counts) == len(self._counts) and self._size == sum(
            counts.values()
        ):
            return self
        return MessageBuffer(counts)

    def deliver(self, message: Message) -> "MessageBuffer":
        """Return a new buffer with one copy of *message* removed.

        Raises
        ------
        InvalidEvent
            If the message is not present — delivering it would violate
            the model.
        """
        current = self._counts.get(message, 0)
        if current == 0:
            raise InvalidEvent(f"{message!r} is not in the message buffer")
        counts = dict(self._counts)
        if current == 1:
            del counts[message]
        else:
            counts[message] = current - 1
        return MessageBuffer(counts)

    # -- queries ------------------------------------------------------------

    def count(self, message: Message) -> int:
        """Multiplicity of *message* in the buffer (0 if absent)."""
        return self._counts.get(message, 0)

    def messages_for(self, process: str) -> tuple[Message, ...]:
        """All distinct messages addressed to *process*, in a deterministic
        order (sorted by ``repr`` of the value for reproducibility)."""
        addressed = [
            m for m in self._counts if m.destination == process
        ]
        addressed.sort(key=lambda m: repr(m.value))
        return tuple(addressed)

    def has_message_for(self, process: str) -> bool:
        """``True`` iff some undelivered message is addressed to *process*."""
        return any(m.destination == process for m in self._counts)

    def distinct_messages(self) -> tuple[Message, ...]:
        """All distinct messages in the buffer, deterministically ordered."""
        messages = list(self._counts)
        messages.sort(key=lambda m: (m.destination, repr(m.value)))
        return tuple(messages)

    def items(self) -> Iterator[tuple[Message, int]]:
        """Iterate over ``(message, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def destinations(self) -> frozenset[str]:
        """The set of processes with at least one pending message."""
        return frozenset(m.destination for m in self._counts)

    # -- dunder -------------------------------------------------------------

    def __contains__(self, message: Message) -> bool:
        return message in self._counts

    def __len__(self) -> int:
        """Total number of messages, counting multiplicity."""
        return self._size

    def __iter__(self) -> Iterator[Message]:
        """Iterate over messages, repeating each per its multiplicity."""
        for message, count in self._counts.items():
            for _ in range(count):
                yield message

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageBuffer):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild from the counts mapping; hashes are recomputed on the
        # receiving side (they are process-local under PYTHONHASHSEED).
        return (MessageBuffer, (self._counts,))

    def __repr__(self) -> str:
        if not self._counts:
            return "MessageBuffer.empty()"
        inner = ", ".join(
            f"{message!r}x{count}" for message, count in sorted(
                self._counts.items(),
                key=lambda item: (item[0].destination, repr(item[0].value)),
            )
        )
        return f"MessageBuffer({{{inner}}})"


_EMPTY = MessageBuffer()
