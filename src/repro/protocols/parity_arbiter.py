"""Parity arbiter: the protocol the staged construction can ride forever.

Every other zoo protocol has a *serialization point* — a message whose
forced delivery commits the decision — so the staged Theorem-1
construction reaches it within a few stages and exits through the fault
fallback.  This protocol is engineered so the bivalent region contains a
*cycle closed under forced deliveries*: the adversary can satisfy the
fairness discipline (every process steps, every message is delivered,
at every stage the head process receives its earliest message) for
arbitrarily many stages while preserving bivalence, with **zero
faults** — the closest a finite-state protocol can come to the paper's
infinite non-deciding admissible run.

Mechanics (one arbiter, N-1 proposers):

* proposers stamp their claims with a *parity* bit (initially 0);
* the arbiter holds a current parity (initially 0); a claim whose stamp
  **matches** commits the protocol — the arbiter decides the claim's
  value and broadcasts the verdict;
* a claim whose stamp is **stale** is harmless: the arbiter answers
  with a ``retry`` carrying its current parity, and the proposer
  re-claims with the fresh stamp;
* the arbiter's *null step* flips its parity (an internal "epoch bump").

The benign environment decides quickly: under round-robin/FIFO the
arbiter flips parity only while its queue is empty, so claims catch up
and match.  The adversary, however, always has the move the Lemma-3
search discovers: slip one arbiter null step (parity flip) in front of
any threatening claim delivery, turning it stale.  Every claim is still
delivered — fairness is intact — but the commit never happens.  Message
traffic is one-in-one-out (claim ↔ retry), so the configuration graph
stays finite and exact valency analysis applies.

Message universe: ``("claim", sender, value, parity)``,
``("retry", parity)``, ``("verdict", value)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["ParityArbiterProcess"]


class ParityArbiterProcess(ConsensusProcess):
    """One process of the parity-arbiter protocol.

    Parameters
    ----------
    arbiter:
        Name of the refereeing process; defaults to the roster's first.
        Its own input register is unused.
    """

    def __init__(self, name: str, peers, arbiter: str | None = None):
        super().__init__(name, peers)
        self.arbiter = arbiter if arbiter is not None else self.peers[0]
        if self.arbiter not in self.peers:
            raise ValueError(f"arbiter {self.arbiter!r} not in roster")

    @property
    def is_arbiter(self) -> bool:
        return self.name == self.arbiter

    def initial_data(self, input_value: int) -> Hashable:
        if self.is_arbiter:
            return ("judging", 0)  # (phase, current parity)
        return ("unclaimed", 0)  # (phase, parity of next claim)

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if self.is_arbiter:
            return self._arbiter_step(state, message_value)
        return self._proposer_step(state, message_value)

    # -- arbiter -------------------------------------------------------------

    def _arbiter_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        phase, parity = state.data
        if state.decided:
            return self.noop(state)
        if message_value is None:
            # Null step: epoch bump.  This is the move that lets the
            # adversary invalidate any in-flight claim.
            return Transition(state.with_data((phase, parity ^ 1)), ())
        if isinstance(message_value, tuple) and message_value:
            kind = message_value[0]
            if kind == "claim":
                _, sender, value, stamp = message_value
                if stamp == parity:
                    # Fresh claim: commit.
                    decided = state.with_data(
                        ("closed", parity)
                    ).with_decision(value)
                    return Transition(
                        decided,
                        self.broadcast(self.others, ("verdict", value)),
                    )
                # Stale claim: harmless; tell the proposer to retry.
                return Transition(
                    state, (self.send_to(sender, ("retry", parity)),)
                )
        return self.noop(state)

    # -- proposer --------------------------------------------------------------

    def _proposer_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        phase, parity = state.data
        sends: list = []
        if phase == "unclaimed":
            sends.append(
                self.send_to(
                    self.arbiter,
                    ("claim", self.name, state.input, parity),
                )
            )
            phase = "claimed"
        new_state = state.with_data((phase, parity))
        if isinstance(message_value, tuple) and message_value:
            kind = message_value[0]
            if kind == "retry" and not new_state.decided:
                fresh = message_value[1]
                if fresh != parity:
                    sends.append(
                        self.send_to(
                            self.arbiter,
                            ("claim", self.name, state.input, fresh),
                        )
                    )
                    new_state = new_state.with_data((phase, fresh))
            elif kind == "verdict" and not new_state.decided:
                new_state = new_state.with_decision(message_value[1])
        return Transition(new_state, tuple(sends))
