"""Bench E4 — Theorem 1 (the adversary's non-deciding runs).

Regenerates the E4 table and micro-benchmarks adversary construction in
both modes: sustained staged mode (parity arbiter) and the fault
fallback (2PC), plus per-stage marginal cost.
"""

from repro.adversary.certificates import AdversaryMode
from repro.adversary.flp import FLPAdversary
from repro.core.valency import ValencyAnalyzer
from repro.protocols import (
    ParityArbiterProcess,
    TwoPhaseCommitProcess,
    make_protocol,
)


def test_e4_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E4")
    for row in result.rows:
        assert row["decisions"] == 0
        assert row["verified"]


def test_staged_mode_25_stages(benchmark):
    protocol = make_protocol(ParityArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    adversary = FLPAdversary(protocol, analyzer=analyzer)
    adversary.build_run(stages=1)  # warm caches

    certificate = benchmark(adversary.build_run, stages=25)
    assert certificate.mode is AdversaryMode.BIVALENCE_PRESERVING
    assert len(certificate.stages) == 25


def test_fault_mode_2pc(benchmark):
    protocol = make_protocol(TwoPhaseCommitProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    adversary = FLPAdversary(protocol, analyzer=analyzer)
    adversary.build_run(stages=1)

    certificate = benchmark(adversary.build_run, stages=5)
    assert certificate.mode is AdversaryMode.FAULT


def test_certificate_verification(benchmark):
    protocol = make_protocol(ParityArbiterProcess, 3)
    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=25)

    assert benchmark(certificate.verify, protocol)
