"""flpkit: an executable reproduction of Fischer-Lynch-Paterson (1985).

"Impossibility of Distributed Consensus with One Faulty Process"
(PODS 1983 / JACM 32(2) 1985) proves that no asynchronous consensus
protocol is totally correct in spite of one crash fault.  flpkit builds
the paper's formal model as a simulation library, turns its lemmas into
decision procedures with replayable certificates, implements the
Theorem-1 adversary as a constructive scheduler, reproduces Section 4's
initially-dead-processes protocol (Theorem 2), and includes the
synchronous / randomized / partially-synchronous escape hatches the
paper contrasts itself against.

Quickstart::

    from repro import make_protocol, ArbiterProcess, FLPAdversary

    protocol = make_protocol(ArbiterProcess, n=3)
    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=25)
    assert certificate.verify(protocol)   # nobody ever decided
"""

from repro.core import (
    Configuration,
    Event,
    Message,
    MessageBuffer,
    Process,
    ProcessState,
    Protocol,
    Schedule,
    SimulationResult,
    StopCondition,
    Transition,
    Valency,
    ValencyAnalyzer,
    check_partial_correctness,
    check_validity,
    explore,
    simulate,
)
from repro.adversary import (
    AdversaryMode,
    FLPAdversary,
    NonDecidingRunCertificate,
    commutativity_diamond,
    find_bivalent_successor,
    find_lemma2,
)
from repro.protocols import (
    ArbiterProcess,
    BenOrProcess,
    FloodSetProcess,
    InitiallyDeadProcess,
    QuorumVoteProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)
from repro.faults import (
    FaultedProtocol,
    FaultPlan,
    audit_run,
    survivability_matrix,
)
from repro.schedulers import (
    CrashPlan,
    DelayScheduler,
    FaultyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "Configuration",
    "Event",
    "Message",
    "MessageBuffer",
    "Process",
    "ProcessState",
    "Protocol",
    "Schedule",
    "SimulationResult",
    "StopCondition",
    "Transition",
    "Valency",
    "ValencyAnalyzer",
    "check_partial_correctness",
    "check_validity",
    "explore",
    "simulate",
    "AdversaryMode",
    "FLPAdversary",
    "NonDecidingRunCertificate",
    "commutativity_diamond",
    "find_bivalent_successor",
    "find_lemma2",
    "ArbiterProcess",
    "BenOrProcess",
    "FloodSetProcess",
    "InitiallyDeadProcess",
    "QuorumVoteProcess",
    "ThreePhaseCommitProcess",
    "TwoPhaseCommitProcess",
    "WaitForAllProcess",
    "make_protocol",
    "FaultedProtocol",
    "FaultPlan",
    "audit_run",
    "survivability_matrix",
    "CrashPlan",
    "DelayScheduler",
    "FaultyScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "__version__",
]
