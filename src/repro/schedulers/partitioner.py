"""Delay/partition scheduling: the "window of vulnerability".

The introduction observes that asynchronous commit protocols "all seem to
have a window of vulnerability — an interval of time during the execution
of the algorithm in which the delay or inaccessibility of a single
process can cause the entire algorithm to wait indefinitely", and
Theorem 1 implies every commit protocol has one.

:class:`DelayScheduler` realizes the attack: it behaves like a fair
round-robin scheduler except that a designated set of processes is
*delayed* — not scheduled, and with their inbound messages frozen —
during a step window.  Delay is not death: after the window closes the
victims resume and all their messages flow again, so the run can remain
admissible while the protocol stalls exactly as the folklore predicts.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.events import NULL, Event
from repro.core.protocol import Protocol
from repro.schedulers.base import CrashPlan, FifoTracker, Scheduler

__all__ = ["DelayScheduler"]


class DelayScheduler(Scheduler):
    """Round-robin, except *delayed* processes are frozen in a window.

    Parameters
    ----------
    delayed:
        Names of the processes to freeze.
    window:
        ``(start, end)`` step interval during which the delay holds;
        ``end=None`` means the delay never lifts (an indefinitely slow —
        but not dead! — process).
    crash_plan:
        Optional additional crash faults.
    """

    def __init__(
        self,
        delayed: frozenset[str] | set[str],
        window: tuple[int, int | None] = (0, None),
        crash_plan: CrashPlan | None = None,
    ):
        super().__init__(crash_plan)
        start, end = window
        if start < 0 or (end is not None and end < start):
            raise ValueError(f"malformed delay window: {window!r}")
        self._delayed = frozenset(delayed)
        self._window = (start, end)
        self._cursor = 0
        self._fifo = FifoTracker()

    def is_delayed(self, process: str, step_index: int) -> bool:
        """Whether *process* is frozen at *step_index*."""
        start, end = self._window
        in_window = step_index >= start and (end is None or step_index < end)
        return in_window and process in self._delayed

    def next_event(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> Event | None:
        self._fifo.observe(configuration.buffer)
        live = self.crash_plan.live_at(protocol.process_names, step_index)
        candidates = tuple(
            name for name in live if not self.is_delayed(name, step_index)
        )
        if not candidates:
            return None
        for offset in range(len(candidates)):
            process = candidates[(self._cursor + offset) % len(candidates)]
            earliest = self._fifo.earliest_for(process)
            decided = configuration.state_of(process).decided
            if earliest is None and decided:
                continue
            self._cursor = (self._cursor + offset + 1) % len(candidates)
            if earliest is None:
                return Event(process, NULL)
            return Event(process, earliest.value)
        return None

    def reset(self) -> None:
        self._cursor = 0
        self._fifo = FifoTracker()
