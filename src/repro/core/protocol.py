"""The consensus protocol ``P``: N processes + transition functions.

"A consensus protocol P is an asynchronous system of N processes
(N ≥ 2). ... The entire system P is specified by the transition functions
associated with each of the processes and the initial values of the input
registers."  (paper, Section 2)

:class:`Protocol` bundles the process automata and provides the semantics
of steps: applying events and schedules to configurations, and
enumerating the events applicable to a configuration.  Initial values are
*not* baked in — a protocol paired with an input vector yields an initial
configuration, and iterating over all ``2^N`` vectors gives the space
Lemma 2 quantifies over.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.configuration import Configuration
from repro.core.errors import (
    InvalidEvent,
    ProtocolViolation,
    UnknownProcess,
)
from repro.core.events import NULL, Event, Schedule
from repro.core.messages import MessageBuffer
from repro.core.process import Process
from repro.core.values import validate_input_vector

__all__ = ["Protocol"]


class Protocol:
    """An asynchronous system of N ≥ 2 deterministic processes."""

    def __init__(self, processes: Sequence[Process]):
        if len(processes) < 2:
            raise ValueError(
                f"the paper requires N >= 2 processes, got {len(processes)}"
            )
        names = [p.name for p in processes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate process names: {names}")
        self._processes = {p.name: p for p in processes}
        self._names = tuple(sorted(names))

    # -- structure -----------------------------------------------------------

    @property
    def process_names(self) -> tuple[str, ...]:
        """All process names, sorted."""
        return self._names

    @property
    def num_processes(self) -> int:
        """N, the number of processes."""
        return len(self._names)

    def process(self, name: str) -> Process:
        """The automaton for *name*.

        Raises
        ------
        UnknownProcess
            If no process has that name.
        """
        try:
            return self._processes[name]
        except KeyError:
            raise UnknownProcess(name) from None

    # -- initial configurations ---------------------------------------------

    def initial_configuration(
        self, inputs: Mapping[str, int] | Sequence[int]
    ) -> Configuration:
        """The initial configuration for an assignment of input values.

        Parameters
        ----------
        inputs:
            Either a mapping ``name -> value`` covering every process, or
            a sequence of values matched to :attr:`process_names` order.

        The message buffer of an initial configuration is empty.
        """
        if isinstance(inputs, Mapping):
            missing = set(self._names) - set(inputs)
            extra = set(inputs) - set(self._names)
            if missing or extra:
                raise ValueError(
                    f"input assignment mismatch: missing={sorted(missing)}, "
                    f"unknown={sorted(extra)}"
                )
            vector = validate_input_vector(
                inputs[name] for name in self._names
            )
        else:
            vector = validate_input_vector(inputs)
            if len(vector) != len(self._names):
                raise ValueError(
                    f"expected {len(self._names)} input values, "
                    f"got {len(vector)}"
                )
        states = {
            name: self._processes[name].initial_state(value)
            for name, value in zip(self._names, vector)
        }
        return Configuration(states, MessageBuffer.empty())

    def initial_configurations(self) -> Iterator[Configuration]:
        """All ``2^N`` initial configurations, in lexicographic input order.

        This is the space over which Lemma 2 finds a bivalent member:
        "any two initial configurations are joined by a chain of initial
        configurations, each adjacent to the next."
        """
        n = len(self._names)
        for bits in range(2**n):
            vector = tuple((bits >> i) & 1 for i in range(n))
            yield self.initial_configuration(vector)

    def input_vector(self, configuration: Configuration) -> tuple[int, ...]:
        """The input-register values of *configuration*, in name order."""
        return tuple(
            configuration.state_of(name).input for name in self._names
        )

    # -- step semantics --------------------------------------------------------

    def apply_event(
        self, configuration: Configuration, event: Event
    ) -> Configuration:
        """``e(C)``: the configuration resulting from applying *event*.

        The step occurs in two phases, exactly as in the paper: first
        ``receive(p)`` removes the delivered message from the buffer (or
        delivers the null marker and leaves it unchanged); then ``p``
        enters a new internal state and sends a finite set of messages.

        Raises
        ------
        InvalidEvent
            If the event is not applicable to *configuration*.
        ProtocolViolation
            If the transition breaks a structural rule (write-once output,
            read-only input, message to an unknown process).
        """
        if event.process not in self._processes:
            raise UnknownProcess(event.process)
        state = configuration.state_of(event.process)
        if event.is_null_delivery:
            buffer = configuration.buffer
        else:
            # Raises InvalidEvent if the message is absent.
            buffer = configuration.buffer.deliver(event.message)
        transition = self._processes[event.process].apply(state, event.value)
        for message in transition.sends:
            if message.destination not in self._processes:
                raise ProtocolViolation(
                    f"process {event.process} sent a message to unknown "
                    f"process {message.destination!r}"
                )
        buffer = buffer.send_all(transition.sends)
        return configuration.replace(event.process, transition.state, buffer)

    def apply_schedule(
        self, configuration: Configuration, schedule: Schedule | Iterable[Event]
    ) -> Configuration:
        """``σ(C)``: apply a finite schedule event by event."""
        current = configuration
        for event in schedule:
            current = self.apply_event(current, event)
        return current

    def run(
        self, configuration: Configuration, schedule: Schedule | Iterable[Event]
    ) -> Iterator[Configuration]:
        """Yield the configurations of the run ``C, e1(C), e2(e1(C)), ...``.

        The initial configuration itself is yielded first, so the output
        has ``len(schedule) + 1`` items for a finite schedule.
        """
        current = configuration
        yield current
        for event in schedule:
            current = self.apply_event(current, event)
            yield current

    # -- enabled events -----------------------------------------------------------

    def enabled_events(
        self, configuration: Configuration, include_null: bool = True
    ) -> tuple[Event, ...]:
        """All events applicable to *configuration*, deterministically
        ordered.

        For every process the null-delivery event ``(p, NULL)`` is
        applicable (if *include_null*); in addition, each distinct
        buffered message yields a delivery event.  The branching of the
        reachable-configuration graph is exactly this set.
        """
        events: list[Event] = []
        if include_null:
            events.extend(Event(name, NULL) for name in self._names)
        for message in configuration.buffer.distinct_messages():
            events.append(Event(message.destination, message.value))
        return tuple(events)

    def delivery_events(
        self, configuration: Configuration, process: str
    ) -> tuple[Event, ...]:
        """The delivery events available to one process: its distinct
        buffered messages, plus the always-applicable null delivery."""
        events = [Event(process, NULL)]
        events.extend(
            Event(process, message.value)
            for message in configuration.buffer.messages_for(process)
        )
        return tuple(events)

    def consumed_message(self, event: Event):
        """The buffered message *event* consumes, or ``None``.

        Protocol variants with pseudo-events (e.g. fault-model message
        drops) override this so generic machinery — parallel expansion
        workers in particular — can mirror buffer transitions without
        knowing the variant's event vocabulary.
        """
        return None if event.is_null_delivery else event.message

    def packed_codec(self):
        """A fresh packed codec speaking this protocol's step semantics.

        Subclasses with non-standard semantics (fault injection) return a
        codec subclass here instead of disabling the packed engine.  The
        import is local because :mod:`repro.core.packing` imports this
        module.
        """
        from repro.core.packing import PackedCodec

        return PackedCodec(self)

    def __repr__(self) -> str:
        return (
            f"Protocol(N={len(self._names)}, "
            f"processes={list(self._names)!r})"
        )
