"""Fair round-robin scheduling with FIFO message delivery.

The friendliest asynchronous environment: processes take steps in a fixed
cyclic order and each step delivers the process's *earliest* pending
message (FIFO by send time, tracked by
:class:`~repro.schedulers.base.FifoTracker`), or null when its queue is
empty.  Every live process takes infinitely many steps and every message
to a live process is eventually delivered, so infinite round-robin runs
are admissible — this scheduler is what "a correctly functioning network"
looks like in the model, and the baseline against which the FLP
adversary's malice is measured.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.events import NULL, Event
from repro.core.protocol import Protocol
from repro.schedulers.base import CrashPlan, FifoTracker, Scheduler

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(Scheduler):
    """Cycle through live processes; deliver FIFO or null.

    Parameters
    ----------
    crash_plan:
        Optional crash-fault schedule; crashed processes drop out of the
        rotation at their crash step.
    skip_decided:
        When ``True`` (default), processes that have decided and have no
        pending messages are skipped — they would only take no-op null
        steps.  Set ``False`` to model the letter of the paper, where a
        nonfaulty process steps forever.
    """

    def __init__(
        self,
        crash_plan: CrashPlan | None = None,
        skip_decided: bool = True,
    ):
        super().__init__(crash_plan)
        self._skip_decided = skip_decided
        self._cursor = 0
        self._fifo = FifoTracker()

    def next_event(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> Event | None:
        self._fifo.observe(configuration.buffer)
        live = self.crash_plan.live_at(protocol.process_names, step_index)
        if not live:
            return None
        for offset in range(len(live)):
            process = live[(self._cursor + offset) % len(live)]
            earliest = self._fifo.earliest_for(process)
            decided = configuration.state_of(process).decided
            if earliest is None and decided and self._skip_decided:
                continue
            self._cursor = (self._cursor + offset + 1) % len(live)
            if earliest is None:
                return Event(process, NULL)
            return Event(process, earliest.value)
        # Everyone is decided with empty queues: nothing useful remains.
        return None

    def reset(self) -> None:
        self._cursor = 0
        self._fifo = FifoTracker()
