"""E6 — the introduction's "window of vulnerability", measured.

"The asynchronous commit protocols in current use all seem to have a
window of vulnerability — an interval of time during the execution of
the algorithm in which the delay or inaccessibility of a single process
can cause the entire algorithm to wait indefinitely."

We drive 2PC and 3PC on an all-yes transaction (the commit-bound case)
with the :class:`~repro.schedulers.partitioner.DelayScheduler` freezing
a single process — the coordinator, or one participant — from step
``window_start`` on.  The protocol stalls for as long as the delay holds
(measured in scheduler steps with no decision), and completes promptly
once the window lifts.  Delay is not death: the run stays admissible,
which is exactly why no timeout logic could save the protocol in this
model.
"""

from __future__ import annotations

from repro.core.simulation import StopCondition, simulate
from repro.experiments.harness import ExperimentResult, experiment
from repro.experiments.zoo import commit_zoo
from repro.schedulers import DelayScheduler, RoundRobinScheduler

__all__ = ["run"]


@experiment("E6", "Intro: the commit window of vulnerability")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    window_steps = 120 if quick else 600
    rows = []
    for label, protocol in commit_zoo(quick):
        names = protocol.process_names
        all_yes = [1] * len(names)
        initial = protocol.initial_configuration(all_yes)

        # Baseline: no interference — the transaction commits.
        baseline = simulate(
            protocol,
            initial,
            RoundRobinScheduler(),
            max_steps=window_steps,
            stop=StopCondition.ALL_DECIDED,
        )

        for victim_label, victim in (
            ("coordinator", names[0]),
            ("participant", names[-1]),
        ):
            # Freeze the victim forever: blocked run.
            frozen = simulate(
                protocol,
                initial,
                DelayScheduler({victim}, window=(0, None)),
                max_steps=window_steps,
                stop=StopCondition.ALL_DECIDED,
            )
            undecided = [
                name
                for name in names
                if name != victim and name not in frozen.decisions
            ]
            # Lift the window at half time: the run completes.
            lifted = simulate(
                protocol,
                initial,
                DelayScheduler(
                    {victim}, window=(0, window_steps // 2)
                ),
                max_steps=window_steps * 2,
                stop=StopCondition.ALL_DECIDED,
            )
            rows.append(
                {
                    "protocol": label,
                    "delayed": victim_label,
                    "baseline_steps": baseline.steps,
                    "blocked": not frozen.decided,
                    "stalled_undecided": len(undecided),
                    "decides_after_lift": lifted.decided,
                    "lift_steps": lifted.steps,
                }
            )
    return ExperimentResult(
        exp_id="E6",
        title="Intro: the commit window of vulnerability",
        rows=tuple(rows),
        notes=(
            "expected: delaying the coordinator blocks every participant "
            "that voted yes (blocked=True, stalled_undecided > 0); "
            "delaying one participant blocks the commit globally too — "
            "the window the introduction describes, implied for EVERY "
            "commit protocol by Theorem 1",
            "the delayed process is slow, not dead: once the window "
            "lifts, the protocol completes (decides_after_lift=True), "
            "so no failure-detection logic could have distinguished the "
            "two in time",
        ),
        seed=seed,
        quick=quick,
    )
