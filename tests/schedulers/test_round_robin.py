"""Unit tests for the round-robin scheduler."""

from repro.core.simulation import StopCondition, simulate
from repro.protocols import ArbiterProcess, WaitForAllProcess, make_protocol
from repro.schedulers import CrashPlan, RoundRobinScheduler


class TestRotation:
    def test_cycles_processes_in_order(self, wait_for_all3):
        scheduler = RoundRobinScheduler()
        config = wait_for_all3.initial_configuration([0, 0, 0])
        seen = []
        for step in range(6):
            event = scheduler.next_event(wait_for_all3, config, step)
            seen.append(event.process)
            config = wait_for_all3.apply_event(config, event)
        assert seen[:3] == ["p0", "p1", "p2"]

    def test_fifo_delivery(self, wait_for_all3):
        scheduler = RoundRobinScheduler()
        config = wait_for_all3.initial_configuration([0, 1, 0])
        # Let p0 and p1 broadcast; p2's earliest message is p0's vote.
        for step in range(2):
            event = scheduler.next_event(wait_for_all3, config, step)
            config = wait_for_all3.apply_event(config, event)
        event = scheduler.next_event(wait_for_all3, config, 2)
        assert event.process == "p2"
        assert event.value == ("vote", "p0", 0)

    def test_reset_restores_cursor(self, wait_for_all3):
        scheduler = RoundRobinScheduler()
        config = wait_for_all3.initial_configuration([0, 0, 0])
        first = scheduler.next_event(wait_for_all3, config, 0)
        scheduler.reset()
        again = scheduler.next_event(wait_for_all3, config, 0)
        assert first == again


class TestCrashes:
    def test_crashed_process_never_scheduled(self, wait_for_all3):
        scheduler = RoundRobinScheduler(crash_plan=CrashPlan({"p1": 0}))
        config = wait_for_all3.initial_configuration([0, 0, 0])
        for step in range(9):
            event = scheduler.next_event(wait_for_all3, config, step)
            assert event.process != "p1"
            config = wait_for_all3.apply_event(config, event)

    def test_all_crashed_yields_none(self, wait_for_all3):
        scheduler = RoundRobinScheduler(
            crash_plan=CrashPlan({"p0": 0, "p1": 0, "p2": 0})
        )
        config = wait_for_all3.initial_configuration([0, 0, 0])
        assert scheduler.next_event(wait_for_all3, config, 0) is None


class TestLiveness:
    def test_every_safe_protocol_decides_fault_free(self):
        for cls in (ArbiterProcess, WaitForAllProcess):
            protocol = make_protocol(cls, 3)
            result = simulate(
                protocol,
                protocol.initial_configuration([1, 0, 1]),
                RoundRobinScheduler(),
                max_steps=300,
                stop=StopCondition.ALL_DECIDED,
            )
            assert result.decided, cls.__name__
            assert result.agreement_holds

    def test_exhausts_after_everyone_decides(self, wait_for_all3):
        scheduler = RoundRobinScheduler()
        result = simulate(
            wait_for_all3,
            wait_for_all3.initial_configuration([1, 1, 1]),
            scheduler,
            max_steps=500,
            stop=StopCondition.NEVER,
        )
        assert result.stop_reason == "scheduler-exhausted"

    def test_skip_decided_false_keeps_stepping(self, wait_for_all3):
        scheduler = RoundRobinScheduler(skip_decided=False)
        result = simulate(
            wait_for_all3,
            wait_for_all3.initial_configuration([1, 1, 1]),
            scheduler,
            max_steps=100,
            stop=StopCondition.NEVER,
        )
        # Decided processes still take null steps forever.
        assert result.stop_reason == "step-budget"
        assert result.steps == 100
