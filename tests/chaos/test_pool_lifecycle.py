"""Worker-pool lifecycle: no multiprocessing children outlive the parent.

The engine's pool used to be reachable for cleanup only through
``__del__`` — fragile under interpreter shutdown ordering.  It now also
registers an atexit hook (through a weakref, so the registration never
keeps the graph alive).  The subprocess test here is the regression pin:
a process that engages the pool and exits *without* closing must leave
no worker processes behind.
"""

import gc
import os
import subprocess
import sys
import time
import weakref

import pytest

from repro.core.exploration import GlobalConfigurationGraph
from repro.protocols import ParityArbiterProcess, make_protocol


@pytest.fixture(scope="module")
def protocol():
    return make_protocol(ParityArbiterProcess, 3)


def _engaged_graph(protocol):
    graph = GlobalConfigurationGraph(
        protocol, workers=2, min_batch_per_worker=1
    )
    graph.explore(
        protocol.initial_configuration([0, 0, 1]), max_configurations=500
    )
    assert graph._pool is not None, "pool never engaged"
    return graph


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other owner
        return True
    return True


LEAKY_SCRIPT = """
from repro.core.exploration import GlobalConfigurationGraph
from repro.protocols import ParityArbiterProcess, make_protocol

protocol = make_protocol(ParityArbiterProcess, 3)
graph = GlobalConfigurationGraph(protocol, workers=2, min_batch_per_worker=1)
graph.explore(
    protocol.initial_configuration([0, 0, 1]), max_configurations=500
)
assert graph._pool is not None, "pool never engaged"
print(" ".join(str(p.pid) for p in graph._pool._pool), flush=True)
# Exit WITHOUT graph.close(): cleanup must not depend on the caller.
"""


class TestNoOrphanedWorkers:
    def test_workers_die_with_an_uncleanly_exiting_parent(self):
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "src"
        )
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [sys.executable, "-c", LEAKY_SCRIPT],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        pids = [int(token) for token in result.stdout.split()]
        assert pids, "subprocess reported no worker pids"
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.1)
        leaked = [pid for pid in pids if _alive(pid)]
        assert not leaked, f"worker processes outlived parent: {leaked}"


class TestAtexitHook:
    def test_hook_registered_on_engage_and_removed_on_close(
        self, protocol
    ):
        graph = _engaged_graph(protocol)
        assert graph._atexit_hook is not None
        graph.close()
        assert graph._atexit_hook is None
        assert graph._pool is None

    def test_close_is_idempotent(self, protocol):
        graph = _engaged_graph(protocol)
        graph.close()
        graph.close()

    def test_pool_rebuilds_after_close(self, protocol):
        graph = _engaged_graph(protocol)
        fingerprint = graph.fingerprint()
        graph.close()
        # A fresh engine after close must be able to engage a new pool.
        other = _engaged_graph(protocol)
        try:
            assert other.fingerprint() == fingerprint
        finally:
            other.close()

    def test_registration_holds_no_strong_reference(self, protocol):
        graph = _engaged_graph(protocol)
        ref = weakref.ref(graph)
        # No close(): only __del__ and the weakref-based atexit hook
        # remain.  The graph must still be collectable.
        del graph
        gc.collect()
        assert ref() is None
