"""Benchmarks of the checkpoint/resume machinery.

Three questions, answered into ``BENCH_resilience.json``:

1. What does a snapshot cost?  Save and load wall time, payload size,
   and nodes-per-second throughput on a budget-capped Ben-Or graph of
   >= 50k configurations — the instance large enough for checkpointing
   to matter at all.
2. What does resume buy?  A run interrupted halfway through its BFS
   levels and resumed from the latest checkpoint must beat a cold
   restart; the artifact records both wall times and the fraction of
   work the checkpoint saved.  The resumed fingerprint must equal the
   cold run's — resume that saves time by corrupting the graph would
   be worse than no resume at all.
3. What does the cadence cost?  The same exploration with per-level
   checkpointing enabled, so the steady-state overhead of the feature
   is a number in review diffs rather than a guess.

Run directly (``python benchmarks/bench_resilience.py``) to emit the
artifact; ``--smoke`` runs a reduced interrupt/resume round-trip on
parity-arbiter and leaves its checkpoint at
``BENCH_resilience_smoke.ckpt`` for the CI artifact upload.
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.checkpoint import (
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
)
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.resilience import ChaosConfig, CheckpointConfig
from repro.protocols import (
    BenOrProcess,
    ParityArbiterProcess,
    make_protocol,
)

from artifact import best_of, write_artifact

#: Repo-root landing spot of the smoke checkpoint (CI uploads it).
SMOKE_CHECKPOINT = Path(__file__).resolve().parent.parent / (
    "BENCH_resilience_smoke.ckpt"
)

BENOR_BUDGET = 50_000

#: Load must sustain at least this many nodes/s — a regression floor
#: for the v2 checkpoint reader (measured ~10.7k/s on the reference
#: box; the margin absorbs slow shared-CI runners).
LOAD_NODES_PER_S_FLOOR = 5_000


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (interactive measurement)
# ---------------------------------------------------------------------------


def _parity_graph():
    protocol = make_protocol(ParityArbiterProcess, 3)
    graph = GlobalConfigurationGraph(protocol)
    graph.explore(protocol.initial_configuration([0, 0, 1]))
    return protocol, graph


def test_checkpoint_save_parity3(benchmark, tmp_path):
    _protocol, graph = _parity_graph()
    path = str(tmp_path / "bench.ckpt")
    info = benchmark(lambda: save_checkpoint(graph, path))
    assert info.nodes == len(graph)


def test_checkpoint_load_parity3(benchmark, tmp_path):
    protocol, graph = _parity_graph()
    path = str(tmp_path / "bench.ckpt")
    save_checkpoint(graph, path)
    resumed = benchmark(lambda: load_checkpoint(path, protocol))
    assert resumed.fingerprint() == graph.fingerprint()


# ---------------------------------------------------------------------------
# Artifact emission (python benchmarks/bench_resilience.py)
# ---------------------------------------------------------------------------


def _benor():
    protocol = make_protocol(BenOrProcess, 3)
    return protocol, protocol.initial_configuration([0, 0, 1])


def collect_checkpoint_throughput(scratch: Path) -> dict:
    """Save/load cost of a snapshot of a >= 50k-configuration graph."""
    protocol, root = _benor()
    graph = GlobalConfigurationGraph(protocol)
    explore_s = best_of(
        lambda: graph.explore(root, max_configurations=BENOR_BUDGET)
        if len(graph) == 0
        else None,
        repeat=1,
    )
    path = str(scratch / "throughput.ckpt")
    save_s = best_of(lambda: save_checkpoint(graph, path))
    header = read_checkpoint_header(path)
    load_s = best_of(lambda: load_checkpoint(path, protocol))
    resumed = load_checkpoint(path, protocol)
    assert resumed.fingerprint() == graph.fingerprint(), (
        "loaded snapshot diverged from the live graph"
    )
    load_nodes_per_s = header["nodes"] / load_s
    assert load_nodes_per_s >= LOAD_NODES_PER_S_FLOOR, (
        f"checkpoint load throughput regressed: "
        f"{load_nodes_per_s:.0f} nodes/s < floor "
        f"{LOAD_NODES_PER_S_FLOOR} nodes/s"
    )
    return {
        "protocol": f"benor/3@{BENOR_BUDGET // 1000}k",
        "nodes": header["nodes"],
        "edges": header["edges"],
        "payload_bytes": header["payload_bytes"],
        "explore_s": round(explore_s, 6),
        "save_s": round(save_s, 6),
        "load_s": round(load_s, 6),
        "save_nodes_per_s": round(header["nodes"] / save_s),
        "load_nodes_per_s": round(header["nodes"] / load_s),
    }


def collect_resume_vs_cold(scratch: Path) -> dict:
    """Interrupt halfway, resume from the checkpoint, compare to cold."""
    protocol, root = _benor()
    cold = GlobalConfigurationGraph(protocol)
    cold_s = best_of(
        lambda: cold.explore(root, max_configurations=BENOR_BUDGET),
        repeat=1,
    )
    levels = cold.stats.explore_levels
    interrupt_level = max(1, levels // 2)

    path = str(scratch / "resume.ckpt")
    victim = GlobalConfigurationGraph(
        protocol,
        checkpoint=CheckpointConfig(path=path, every_levels=1),
        chaos=ChaosConfig(interrupt_after_level=interrupt_level),
    )
    try:
        victim.explore(root, max_configurations=BENOR_BUDGET)
    except KeyboardInterrupt:
        pass
    assert victim.last_partial is not None

    resumed = load_checkpoint(path, protocol)
    resume_s = best_of(
        lambda: resumed.explore(root, max_configurations=BENOR_BUDGET),
        repeat=1,
    )
    assert resumed.fingerprint() == cold.fingerprint(), (
        "resumed graph diverged from the cold run"
    )
    return {
        "protocol": f"benor/3@{BENOR_BUDGET // 1000}k",
        "explore_levels": levels,
        "interrupt_after_level": interrupt_level,
        "checkpointed_nodes": resumed.stats.resumed_nodes,
        "cold_s": round(cold_s, 6),
        "resume_s": round(resume_s, 6),
        "work_saved": round(1 - resume_s / cold_s, 4),
        "fingerprints_match": True,
    }


def collect_cadence_overhead(scratch: Path) -> dict:
    """Exploration with per-level checkpointing vs without."""
    protocol, root = _benor()

    def run(checkpoint):
        graph = GlobalConfigurationGraph(protocol, checkpoint=checkpoint)
        graph.explore(root, max_configurations=BENOR_BUDGET)
        return graph

    plain_s = best_of(lambda: run(None), repeat=1)
    path = str(scratch / "cadence.ckpt")
    stats = {}

    def run_checkpointed():
        graph = run(CheckpointConfig(path=path, every_levels=1))
        stats["written"] = graph.stats.checkpoints_written
        stats["checkpoint_s"] = graph.stats.checkpoint_time

    cadenced_s = best_of(run_checkpointed, repeat=1)
    return {
        "protocol": f"benor/3@{BENOR_BUDGET // 1000}k",
        "plain_s": round(plain_s, 6),
        "per_level_checkpointing_s": round(cadenced_s, 6),
        "checkpoints_written": stats["written"],
        "checkpoint_time_s": round(stats["checkpoint_s"], 6),
        "overhead": round(cadenced_s / plain_s - 1, 4),
    }


def smoke() -> int:
    """CI smoke: a full interrupt/resume round-trip on parity-arbiter.

    Leaves the recovered-from checkpoint at ``BENCH_resilience_smoke.ckpt``
    so the CI job can upload it as an artifact — a real, loadable
    snapshot from every green build.
    """
    protocol = make_protocol(ParityArbiterProcess, 3)
    root = protocol.initial_configuration([0, 0, 1])
    budget = 2_000
    clean = GlobalConfigurationGraph(protocol)
    clean.explore(root, max_configurations=budget)
    path = str(SMOKE_CHECKPOINT)
    victim = GlobalConfigurationGraph(
        protocol,
        checkpoint=CheckpointConfig(path=path, every_levels=1),
        chaos=ChaosConfig(interrupt_after_level=2),
    )
    try:
        victim.explore(root, max_configurations=budget)
    except KeyboardInterrupt:
        pass
    resumed = load_checkpoint(path, protocol)
    resumed.explore(root, max_configurations=budget)
    assert resumed.fingerprint() == clean.fingerprint(), (
        "smoke resume diverged from clean run"
    )
    header = read_checkpoint_header(path)
    print(
        f"smoke ok: interrupted at level 2, resumed "
        f"{header['nodes']} nodes to {len(resumed)} "
        f"(byte-identical); checkpoint kept at {path}"
    )
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--smoke" in argv:
        return smoke()

    with tempfile.TemporaryDirectory() as scratch_dir:
        scratch = Path(scratch_dir)
        sections = {
            "checkpoint_throughput": collect_checkpoint_throughput(scratch),
            "resume_vs_cold": collect_resume_vs_cold(scratch),
            "cadence_overhead": collect_cadence_overhead(scratch),
        }
    path = write_artifact(sections, name="resilience")
    print(f"wrote {path}")
    throughput = sections["checkpoint_throughput"]
    print(
        f"snapshot of {throughput['nodes']} nodes: "
        f"save {throughput['save_s']}s, load {throughput['load_s']}s, "
        f"{throughput['payload_bytes']} bytes"
    )
    resume = sections["resume_vs_cold"]
    print(
        f"resume from level {resume['interrupt_after_level']}/"
        f"{resume['explore_levels']}: {resume['resume_s']}s vs "
        f"{resume['cold_s']}s cold ({resume['work_saved']:.0%} saved)"
    )
    cadence = sections["cadence_overhead"]
    print(
        f"per-level checkpointing overhead: {cadence['overhead']:.1%} "
        f"({cadence['checkpoints_written']} snapshots)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
