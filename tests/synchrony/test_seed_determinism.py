"""Seed-determinism audit of the synchrony stack.

Every random draw in ``repro.synchrony`` and the spectrum sweep goes
through :func:`repro.core.seeding.stable_seed`, which hashes its inputs
with SHA-256 instead of Python's per-process salted ``hash()``.  The
tests here pin that property two ways: in-process (same inputs → same
draws, across objects and call sites) and across subprocesses launched
with *different* ``PYTHONHASHSEED`` values — the salt that would make
any accidental ``hash()``-based seeding diverge between runs.
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.core.seeding import stable_rng, stable_seed
from repro.synchrony.detectors import EventuallyStrongDetector
from repro.synchrony.partial import random_drops

NAMES = ["p0", "p1", "p2"]


def probe() -> dict:
    """Every seeded draw the synchrony stack makes, as one JSON blob.

    Imported by the subprocess half below, so the in-process and
    cross-hashseed tests exercise the identical surface.
    """
    drop_rule = random_drops(seed=5, deliver_probability=0.5)
    drops = [
        [s, r, t, p, drop_rule(s, r, t, p)]
        for s in NAMES
        for r in NAMES
        if s != r
        for t in (1, 2)
        for p in (0, 1)
    ]
    detector = EventuallyStrongDetector(
        NAMES, {"p2": 1}, stabilization_time=4, noise=0.3, seed=11
    )
    suspects = [
        [observer, time, sorted(detector.suspects(observer, time))]
        for observer in NAMES
        for time in (1, 2, 3, 4, 5)
    ]
    from repro.spectrum.montecarlo import SpectrumCell, run_cell

    cell = SpectrumCell(
        protocol="benor",
        n=3,
        f=1,
        grade="adaptive",
        samples=10,
        horizon=40,
    )
    return {
        "stable_seed": [
            stable_seed("audit"),
            stable_seed("audit", 1, "p0", 2.5, None, True),
            stable_seed("audit", ("nested", (0, 1))),
        ],
        "stable_rng": stable_rng("audit", 3).random(),
        "drops": drops,
        "suspects": suspects,
        "cell": run_cell(cell, base_seed=9).to_dict(),
    }


class TestInProcess:
    def test_probe_is_reproducible(self):
        assert probe() == probe()

    def test_stable_seed_distinguishes_types(self):
        # "1" vs 1 vs True vs 1.0 must all hash apart — type confusion
        # is how seeding bugs hide.
        seeds = {
            stable_seed("x", 1),
            stable_seed("x", "1"),
            stable_seed("x", 1.0),
            stable_seed("x", True),
        }
        assert len(seeds) == 4

    def test_random_drops_is_call_site_independent(self):
        one = random_drops(seed=5)
        two = random_drops(seed=5)
        assert one("a", "b", 3, 1) == two("a", "b", 3, 1)


# Runs `probe()` under an explicit PYTHONHASHSEED and prints the blob.
_CHILD = textwrap.dedent(
    """
    import json
    from tests.synchrony.test_seed_determinism import probe
    print(json.dumps(probe(), sort_keys=True))
    """
)


def _probe_under_hashseed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src"), repo_root]
    )
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD],
        check=True,
        env=env,
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    return json.loads(completed.stdout)


class TestCrossHashseed:
    def test_draws_agree_across_hash_salts(self):
        baseline = _probe_under_hashseed("0")
        for seed in ("1", "424242"):
            assert _probe_under_hashseed(seed) == baseline

    def test_parent_process_agrees_with_children(self):
        assert json.loads(json.dumps(probe(), sort_keys=True)) == (
            _probe_under_hashseed("77")
        )
