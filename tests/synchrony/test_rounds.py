"""Tests for the round-synchronous executor."""

import pytest

from repro.protocols import FloodSetProcess
from repro.synchrony.rounds import SyncCrashPlan, run_rounds

NAMES = ("p0", "p1", "p2", "p3")


class TestSyncCrashPlan:
    def test_none(self):
        plan = SyncCrashPlan.none()
        assert plan.faulty == frozenset()
        assert plan.is_live_in("p0", 99)
        assert plan.delivers_to("p0", "p1", 5)

    def test_crash_round_semantics(self):
        plan = SyncCrashPlan({"p0": (3, frozenset({"p1"}))})
        assert plan.is_live_in("p0", 2)
        assert not plan.is_live_in("p0", 3)
        # Full delivery before the crash round.
        assert plan.delivers_to("p0", "p2", 2)
        # Partial delivery in the crash round.
        assert plan.delivers_to("p0", "p1", 3)
        assert not plan.delivers_to("p0", "p2", 3)
        # Nothing afterwards.
        assert not plan.delivers_to("p0", "p1", 4)

    def test_rejects_round_zero(self):
        with pytest.raises(ValueError):
            SyncCrashPlan({"p0": (0, frozenset())})


class TestExecutor:
    def test_inputs_flow_into_initial_state(self):
        processes = [FloodSetProcess(n, NAMES, f=1) for n in NAMES]
        result = run_rounds(
            processes, {n: 1 for n in NAMES}, max_rounds=3
        )
        assert result.decisions == {n: 1 for n in NAMES}

    def test_stops_when_all_live_decided(self):
        processes = [FloodSetProcess(n, NAMES, f=1) for n in NAMES]
        result = run_rounds(
            processes, {n: 0 for n in NAMES}, max_rounds=50
        )
        assert result.rounds_executed == 2  # f+1, not 50

    def test_max_rounds_bound(self):
        processes = [FloodSetProcess(n, NAMES, f=3) for n in NAMES]
        result = run_rounds(
            processes, {n: 0 for n in NAMES}, max_rounds=2
        )
        assert result.rounds_executed == 2
        assert not result.all_live_decided

    def test_crashed_process_not_in_live(self):
        processes = [FloodSetProcess(n, NAMES, f=1) for n in NAMES]
        plan = SyncCrashPlan({"p3": (1, frozenset())})
        result = run_rounds(processes, {n: 0 for n in NAMES}, plan)
        assert result.live == frozenset({"p0", "p1", "p2"})
        assert "p3" not in result.decisions

    def test_states_exposed_for_inspection(self):
        processes = [FloodSetProcess(n, NAMES, f=0) for n in NAMES]
        result = run_rounds(processes, {n: 1 for n in NAMES})
        assert result.states["p0"] == frozenset({1})


class RecordingProcess(FloodSetProcess):
    """FloodSet that records exactly what it received each round."""

    def update(self, state, round_number, received):
        self.last_received = dict(received)
        return super().update(state, round_number, received)


class Equivocator(FloodSetProcess):
    """Tells each receiver a different singleton set."""

    def outgoing_to(self, state, round_number, receiver):
        return frozenset({1 if receiver == "p1" else 0})


class TestPerReceiverMessages:
    def test_equivocation_reaches_different_receivers(self):
        processes = [
            Equivocator("p0", NAMES, f=0),
            RecordingProcess("p1", NAMES, f=0),
            RecordingProcess("p2", NAMES, f=0),
            RecordingProcess("p3", NAMES, f=0),
        ]
        run_rounds(processes, {n: 0 for n in NAMES}, max_rounds=1)
        assert processes[1].last_received["p0"] == frozenset({1})
        assert processes[2].last_received["p0"] == frozenset({0})

    def test_none_means_silence(self):
        class Mute(FloodSetProcess):
            def outgoing_to(self, state, round_number, receiver):
                return None

        processes = [
            Mute("p0", NAMES, f=0),
            RecordingProcess("p1", NAMES, f=0),
            RecordingProcess("p2", NAMES, f=0),
            RecordingProcess("p3", NAMES, f=0),
        ]
        run_rounds(processes, {n: 0 for n in NAMES}, max_rounds=1)
        assert "p0" not in processes[1].last_received

    def test_sends_read_round_start_snapshot(self):
        """Lock-step semantics: within a round, everyone's outgoing is
        computed from the round-start state even though updates land
        during the loop."""

        class SnapshotSensitive(FloodSetProcess):
            def outgoing(self, state, round_number):
                return state  # the state AS OF round start

        processes = [
            SnapshotSensitive(n, NAMES, f=1) for n in NAMES
        ]
        inputs = dict(zip(NAMES, [1, 0, 0, 0]))
        result = run_rounds(processes, inputs, max_rounds=2)
        # Round 1: everyone flooded their ORIGINAL singleton; by round
        # 2 all have merged {0,1}.  If p0's round-1 update leaked into
        # p3's round-1 delivery, p3 would see {0,1} a round early and
        # the executor would not be lock-step.
        assert result.states["p3"] == frozenset({0, 1})
