"""Benchmarks of the exploration service, into ``BENCH_serve.json``.

Two questions:

1. What does the result cache buy?  The same check job cold (daemon
   explores) vs repeated (served from the persistent cache).  The
   artifact records both latencies and the speedup; the cache must be
   at least ``CACHE_SPEEDUP_FLOOR``× faster — this is the PR's
   acceptance gate, asserted here so a regression fails the bench run
   rather than hiding in a JSON diff.
2. What does the daemon sustain under fan-in?  ~200 concurrent
   clients issuing synchronous ``/query`` calls for a cached result:
   requests per second and p50/p99 latency, all against a *real*
   daemon subprocess over real TCP.

``--smoke`` shrinks the load (parity-arbiter, 20 clients) and skips
the artifact write — a fast local sanity check.
"""

import json
import statistics
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.serve.chaos import start_daemon, wait_for_endpoint
from repro.serve.client import ServeClient

from artifact import best_of, write_artifact

#: Acceptance floor: a cache hit must beat the cold run by this factor.
CACHE_SPEEDUP_FLOOR = 50.0

COLD_SPEC = {"verb": "check", "protocol": "benor", "n": 3, "budget": 20_000}
SMOKE_SPEC = {"verb": "check", "protocol": "parity-arbiter", "n": 3}

CLIENTS = 200
SMOKE_CLIENTS = 20


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def collect_cold_vs_cached(client, spec) -> dict:
    started = time.perf_counter()
    response = client.query(spec)
    cold_s = time.perf_counter() - started
    assert response.status == 200, response.body
    assert response.headers["x-repro-cache"] == "accepted"
    cold_body = response.body

    def hit():
        warm = client.query(spec)
        assert warm.status == 200
        assert warm.headers["x-repro-cache"] == "cached"
        assert warm.body == cold_body, "cache hit diverged from cold bytes"

    hit_s = best_of(hit, repeat=5)
    speedup = cold_s / hit_s
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cache hit only {speedup:.1f}x faster than cold "
        f"(floor {CACHE_SPEEDUP_FLOOR}x): cold={cold_s:.4f}s "
        f"hit={hit_s:.4f}s"
    )
    payload = json.loads(cold_body)
    return {
        "spec": spec,
        "result_nodes": payload["result"]["nodes"],
        "cold_s": round(cold_s, 6),
        "cache_hit_s": round(hit_s, 6),
        "speedup": round(speedup, 1),
        "speedup_floor": CACHE_SPEEDUP_FLOOR,
    }


def collect_concurrent_load(client, spec, clients: int) -> dict:
    """*clients* threads, one synchronous cached /query each."""
    latencies: list[float] = []

    def one_query() -> float:
        started = time.perf_counter()
        response = client.query(spec)
        elapsed = time.perf_counter() - started
        assert response.status == 200, response.body
        return elapsed

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        latencies = list(
            pool.map(lambda _: one_query(), range(clients))
        )
    wall_s = time.perf_counter() - wall_started
    return {
        "concurrent_clients": clients,
        "requests": len(latencies),
        "wall_s": round(wall_s, 6),
        "requests_per_s": round(len(latencies) / wall_s, 1),
        "p50_s": round(statistics.median(latencies), 6),
        "p99_s": round(_percentile(latencies, 0.99), 6),
        "max_s": round(max(latencies), 6),
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    spec = SMOKE_SPEC if smoke else COLD_SPEC
    clients = SMOKE_CLIENTS if smoke else CLIENTS

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as scratch:
        daemon = start_daemon(
            Path(scratch) / "spool",
            checkpoint_every_s=1.0,
            job_workers=2,
        )
        try:
            probe = wait_for_endpoint(Path(scratch) / "spool", daemon)
            client = ServeClient(probe.host, probe.port, timeout_s=300.0)
            cache = collect_cold_vs_cached(client, spec)
            load = collect_concurrent_load(client, spec, clients)
            stats = client.stats()
        finally:
            daemon.terminate()
            daemon.wait(30)

    assert stats["counters"]["explorations_run"] == 1, (
        "repeat queries must not re-explore"
    )
    sections = {
        "cold_vs_cached": cache,
        "concurrent_load": load,
        "daemon_counters": {
            key: value
            for key, value in stats["counters"].items()
            if value
        },
    }
    print(
        f"cold {cache['cold_s']}s vs cache hit {cache['cache_hit_s']}s "
        f"({cache['speedup']}x, floor {CACHE_SPEEDUP_FLOOR}x)"
    )
    print(
        f"{load['concurrent_clients']} concurrent clients: "
        f"{load['requests_per_s']} req/s, "
        f"p50 {load['p50_s']}s, p99 {load['p99_s']}s"
    )
    if smoke:
        print("smoke ok (artifact not written)")
        return 0
    path = write_artifact(sections, name="serve")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
