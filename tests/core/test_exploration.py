"""Unit tests for reachable-configuration exploration."""

import pytest

from repro.core.errors import ExplorationLimitExceeded
from repro.core.events import Event
from repro.core.exploration import explore, reachable_set
from repro.protocols import ArbiterProcess, WaitForAllProcess, make_protocol


@pytest.fixture(scope="module")
def arbiter():
    return make_protocol(ArbiterProcess, 3)


@pytest.fixture(scope="module")
def arbiter_graph(arbiter):
    return explore(arbiter, arbiter.initial_configuration([0, 0, 1]))


class TestExplore:
    def test_root_is_node_zero(self, arbiter, arbiter_graph):
        root = arbiter.initial_configuration([0, 0, 1])
        assert arbiter_graph.configurations[0] == root
        assert arbiter_graph.node_id(root) == 0

    def test_finite_protocol_completes(self, arbiter_graph):
        assert arbiter_graph.complete
        assert not arbiter_graph.frontier

    def test_contains_and_len(self, arbiter, arbiter_graph):
        assert arbiter.initial_configuration([0, 0, 1]) in arbiter_graph
        assert len(arbiter_graph) > 1

    def test_every_edge_is_a_real_transition(self, arbiter, arbiter_graph):
        for source, event, target in arbiter_graph.iter_edges():
            src_config = arbiter_graph.configurations[source]
            assert event.is_applicable(src_config)
            assert (
                arbiter.apply_event(src_config, event)
                == arbiter_graph.configurations[target]
            )

    def test_predecessors_mirror_successors(self, arbiter_graph):
        for source, _event, target in arbiter_graph.iter_edges():
            assert source in arbiter_graph.predecessors[target]

    def test_budget_produces_honest_partial_result(self, arbiter):
        root = arbiter.initial_configuration([0, 0, 1])
        graph = explore(arbiter, root, max_configurations=5)
        assert not graph.complete
        assert graph.frontier
        assert len(graph) <= 5

    def test_event_filter_blocks_events(self, arbiter):
        root = arbiter.initial_configuration([0, 0, 1])
        # Forbid p1 from ever stepping: p1's claim never enters the
        # buffer, so the graph shrinks.
        filtered = explore(
            arbiter,
            root,
            event_filter=lambda _c, e: e.process != "p1",
        )
        unfiltered = explore(arbiter, root)
        assert len(filtered) < len(unfiltered)
        for _source, event, _target in filtered.iter_edges():
            assert event.process != "p1"

    def test_include_null_false_from_initial_is_trivial(self, arbiter):
        # Initially the buffer is empty, so without null deliveries no
        # event is enabled at all.
        root = arbiter.initial_configuration([0, 0, 1])
        graph = explore(arbiter, root, include_null=False)
        assert len(graph) == 1


class TestReverseReachability:
    def test_nodes_reaching_includes_targets(self, arbiter_graph):
        targets = {len(arbiter_graph) - 1}
        reaching = arbiter_graph.nodes_reaching(targets)
        assert targets <= reaching

    def test_root_reaches_decisions(self, arbiter_graph):
        zero_nodes = arbiter_graph.decision_nodes(0)
        one_nodes = arbiter_graph.decision_nodes(1)
        assert zero_nodes and one_nodes  # mixed inputs: both reachable
        assert 0 in arbiter_graph.nodes_reaching(zero_nodes)
        assert 0 in arbiter_graph.nodes_reaching(one_nodes)

    def test_empty_targets(self, arbiter_graph):
        assert arbiter_graph.nodes_reaching(set()) == set()


class TestReachableSet:
    def test_matches_explore(self, arbiter):
        root = arbiter.initial_configuration([1, 1, 1])
        graph = explore(arbiter, root)
        assert reachable_set(arbiter, root) == set(graph.configurations)

    def test_require_complete_raises_on_budget(self, arbiter):
        root = arbiter.initial_configuration([0, 0, 1])
        with pytest.raises(ExplorationLimitExceeded):
            reachable_set(
                arbiter, root, max_configurations=3, require_complete=True
            )


class TestDeterminism:
    def test_same_exploration_twice(self, arbiter):
        root = arbiter.initial_configuration([0, 1, 0])
        a = explore(arbiter, root)
        b = explore(arbiter, root)
        assert a.configurations == b.configurations
        assert list(a.iter_edges()) == list(b.iter_edges())

    def test_wait_for_all_graph_size_is_stable(self):
        # Regression anchor: the wait-for-all/3 accessible set from one
        # initial configuration has a fixed size.
        protocol = make_protocol(WaitForAllProcess, 3)
        root = protocol.initial_configuration([0, 1, 1])
        assert len(explore(protocol, root)) == len(explore(protocol, root))
