"""Benchmarks of the packed exploration core and the worker pool.

Five questions, answered into ``BENCH_parallel.json``:

1. What does the packed encoding buy over the dict-backed engine on the
   repeated-valency workload of ``bench_core_ops``?  (The acceptance
   bar for the packing PR: >= 2x; a floor of
   ``PACKED_VS_DICT_FLOOR`` is asserted on every refresh so silent
   decay fails the build instead of quietly shipping in the artifact.)
2. What does the batched transition kernel buy over the scalar
   ``step()`` path on serial cold exploration of the budget-capped
   Ben-Or instance?  The fingerprints of both runs must be identical —
   the kernel is a faster route to the same bytes, or it is a bug.
3. How does cold exploration scale with worker processes on instances
   of increasing size, up to a budget-capped Ben-Or graph of >= 50k
   configurations?  ``cpu_count`` is recorded alongside: on a single
   hardware core the pool adds pickling overhead and cannot win, and
   the artifact should say so rather than flatter the feature.
4. Is the parallel graph byte-identical to the serial one?  The
   fingerprint (a SHA-256 over every packed node and edge, in id order)
   must match across worker counts — recorded per instance so the
   determinism contract is checked on every refresh, not only in the
   test suite.
5. (``--deep`` only) How fast does the kernel push a ten-million-node
   mmap-spilled exploration, in nodes per second?  This row takes tens
   of minutes and is refreshed deliberately, not on every run.

Run directly (``python benchmarks/bench_parallel.py``) to emit the
artifact; ``--smoke`` runs a single reduced instance and writes
nothing (the CI smoke step); ``--ci-kernel`` runs only the serial
kernel-vs-scalar gate (valid on any core count, writes nothing).
"""

import hashlib
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.exploration import GlobalConfigurationGraph
from repro.core.store import StoreConfig
from repro.core.valency import ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    BenOrProcess,
    ParityArbiterProcess,
    make_protocol,
)

from artifact import artifact_path, best_of, write_artifact
from bench_core_ops import _overlapping_roots, _query_all

#: Floor for the packed-over-dict speedup, asserted on every artifact
#: refresh.  PR 2 pinned 2.32x on the original 48-root arbiter/3
#: workload, but that graph (176 nodes) is fixed-cost dominated and the
#: measurement decayed to ~1.1x without anything in the engine getting
#: slower.  The workload is now the 1200-node parity-arbiter/3 closure
#: (measures the engines, not interpreter startup: 2.2-2.6x on the
#: reference box); the floor is set below the noise band so a real
#: regression fails loudly and a noisy run does not.
PACKED_VS_DICT_FLOOR = 1.5

#: Floor for the kernel-over-scalar serial speedup on benor/3@50k,
#: enforced by ``--ci-kernel`` (3.2x on the reference box).
KERNEL_SPEEDUP_FLOOR = 2.0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (interactive measurement)
# ---------------------------------------------------------------------------


def test_packed_explore_parity3(benchmark):
    protocol = make_protocol(ParityArbiterProcess, 3)
    root = protocol.initial_configuration([0, 0, 1])

    def run():
        graph = GlobalConfigurationGraph(protocol)
        return graph.explore(root)

    result = benchmark(run)
    assert result.complete


def test_dict_explore_parity3(benchmark):
    protocol = make_protocol(ParityArbiterProcess, 3)
    root = protocol.initial_configuration([0, 0, 1])

    def run():
        graph = GlobalConfigurationGraph(protocol, packed=False)
        return graph.explore(root)

    result = benchmark(run)
    assert result.complete


def test_packed_valency_queries(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    roots = _overlapping_roots(protocol)

    def run():
        return _query_all(ValencyAnalyzer(protocol), roots)

    assert benchmark(run) > 0


# ---------------------------------------------------------------------------
# Artifact emission (python benchmarks/bench_parallel.py)
# ---------------------------------------------------------------------------


def graph_fingerprint(graph: GlobalConfigurationGraph) -> str:
    """SHA-256 over every packed node and edge, in id order.

    Two engines produce the same fingerprint iff they interned the same
    packed tuples under the same ids and recorded the same edges in the
    same order — the determinism contract of ``workers > 1``.
    """
    digest = hashlib.sha256()
    for node in range(len(graph)):
        digest.update(repr(graph.packed_at(node)).encode())
        digest.update(repr(graph.successors[node]).encode())
    return digest.hexdigest()


def collect_packed_vs_dict() -> dict:
    """The bench_core_ops workload: packed engine vs dict baseline.

    parity-arbiter/3 (1200 reachable configurations), not arbiter/3
    (176): on the tiny graph both engines finish in milliseconds and
    the ratio measures constant overheads, which is how the pinned
    2.32x silently decayed to ~1.1x.  The floor assertion turns any
    future decay into a hard failure at refresh time.
    """
    protocol = make_protocol(ParityArbiterProcess, 3)
    roots = _overlapping_roots(protocol)

    def run(packed: bool) -> int:
        analyzer = ValencyAnalyzer(protocol, packed=packed)
        bivalent = _query_all(analyzer, roots)
        assert bivalent > 0
        return bivalent

    packed_s = best_of(lambda: run(True))
    dict_s = best_of(lambda: run(False))
    speedup = dict_s / packed_s
    assert speedup >= PACKED_VS_DICT_FLOOR, (
        f"packed-over-dict speedup decayed to {speedup:.2f}x, below the "
        f"{PACKED_VS_DICT_FLOOR}x floor — a packed-engine regression, "
        "not measurement noise"
    )
    return {
        "protocol": "parity-arbiter/3",
        "workload": "overlapping_valency_queries",
        "query_roots": len(roots),
        "packed_serial_s": round(packed_s, 6),
        "dict_baseline_s": round(dict_s, 6),
        "speedup": round(speedup, 2),
        "floor": PACKED_VS_DICT_FLOOR,
    }


def collect_kernel_speedup(budget: int = 50_000) -> dict:
    """Serial cold exploration: batched kernel vs scalar ``step()``.

    Both runs are the serial engine on benor/3@*budget*; the only
    difference is ``kernel=``.  Byte-identical fingerprints are part of
    the measurement — a kernel that is fast but diverges is a bug, and
    this section would rather crash than record it.
    """
    protocol = make_protocol(BenOrProcess, 3)
    root = protocol.initial_configuration(
        [0] * (len(protocol.process_names) - 1) + [1]
    )
    out: dict = {"protocol": f"benor/3@{budget // 1000}k"}

    def explore_once(kernel: bool) -> None:
        graph = GlobalConfigurationGraph(protocol, kernel=kernel)
        try:
            graph.explore(root, budget)
            key = "kernel" if kernel else "scalar"
            out[f"{key}_fingerprint"] = graph_fingerprint(graph)
            out["configurations"] = len(graph)
            if kernel:
                stats = graph.stats
                out["kernel_batch_expansions"] = stats.kernel_batch_expansions
                out["kernel_table_hits"] = stats.kernel_table_hits
                out["kernel_fallback_steps"] = stats.kernel_fallback_steps
                out["kernel_table_bytes"] = stats.kernel_table_bytes
        finally:
            graph.close()

    scalar_s = best_of(lambda: explore_once(False), repeat=2)
    kernel_s = best_of(lambda: explore_once(True), repeat=2)
    identical = out["scalar_fingerprint"] == out["kernel_fingerprint"]
    assert identical, "kernel exploration diverged from scalar step()"
    out.update(
        scalar_serial_s=round(scalar_s, 6),
        kernel_serial_s=round(kernel_s, 6),
        speedup=round(scalar_s / kernel_s, 2),
        identical=identical,
    )
    return out


def collect_deep_exploration(budget: int = 10_000_000) -> dict:
    """One kernel-driven, mmap-spilled deep exploration, timed.

    The spill budget is pinned low enough that the flat buffers
    genuinely migrate to memory-mapped temp files mid-run — the row
    records throughput for the configuration the feature exists for,
    not for a run that happened to fit in RAM.
    """
    protocol = make_protocol(BenOrProcess, 3)
    root = protocol.initial_configuration(
        [0] * (len(protocol.process_names) - 1) + [1]
    )
    graph = GlobalConfigurationGraph(
        protocol,
        store=StoreConfig(mode="mmap", spill_budget_mb=256),
    )
    try:
        start = time.perf_counter()
        graph.explore(root, budget)
        elapsed = time.perf_counter() - start
        nodes = len(graph)
        return {
            "protocol": "benor/3",
            "budget": budget,
            "configurations": nodes,
            "store": "mmap",
            "spilled": graph.store.spilled,
            "kernel": True,
            "elapsed_s": round(elapsed, 2),
            "nodes_per_s": round(nodes / elapsed, 1),
        }
    finally:
        graph.close()


def collect_parallel_scaling(
    instances=None, worker_counts=(0, 2, 4), repeat=3, force=False
) -> dict:
    """Cold-exploration wall time per instance and worker count.

    Worker counts the machine cannot actually run concurrently are
    *skipped* with an honest ``"skipped": "cpu_count < workers"``
    marker instead of recording numbers that only measure
    oversubscription (``force=True`` overrides — the smoke's
    byte-identity check is about correctness, not timing, and is valid
    on any core count).  Entries where the pool never dispatched a batch
    carry ``_pool_dispatched: false`` and a ``null`` utilization —
    never a fabricated ``0.0``.
    """
    if instances is None:
        instances = [
            ("arbiter/3", make_protocol(ArbiterProcess, 3), None),
            (
                "parity-arbiter/3",
                make_protocol(ParityArbiterProcess, 3),
                None,
            ),
            # Ben-Or's reachable set is unbounded; the budget caps it at
            # a >= 50k-configuration instance (complete=False by design).
            ("benor/3@50k", make_protocol(BenOrProcess, 3), 50_000),
        ]
    cpu_count = os.cpu_count() or 1
    results = {"cpu_count": cpu_count, "instances": {}}
    for label, protocol, budget in instances:
        root = protocol.initial_configuration(
            [0] * (len(protocol.process_names) - 1) + [1]
        )
        kwargs = {} if budget is None else {"max_configurations": budget}
        row = {}
        fingerprints = {}
        for workers in worker_counts:
            key = "serial" if workers == 0 else f"workers{workers}"
            if workers > cpu_count and not force:
                row[f"{key}_s"] = None
                row[f"{key}_skipped"] = "cpu_count < workers"
                continue
            # The big instance is timed once; re-running a 50k-node
            # exploration 3x per worker count buys little extra signal.
            runs = 1 if budget else repeat

            def explore_once():
                graph = GlobalConfigurationGraph(protocol, workers=workers)
                try:
                    graph.explore(root, **kwargs)
                    fingerprints[workers] = graph_fingerprint(graph)
                    row["configurations"] = len(graph)
                    if workers:
                        # None = the pool never processed a batch (every
                        # level fell below the dispatch threshold) — the
                        # JSON says null, not a misleading 0.0.
                        utilization = graph.stats.worker_utilization
                        row[f"{key}_utilization"] = (
                            None
                            if utilization is None
                            else round(utilization, 4)
                        )
                        row[f"{key}_pool_dispatched"] = (
                            graph.stats.worker_batches > 0
                        )
                finally:
                    graph.close()

            row[f"{key}_s"] = round(best_of(explore_once, repeat=runs), 6)
        row["deterministic"] = len(set(fingerprints.values())) == 1
        row["fingerprint"] = fingerprints[worker_counts[0]]
        results["instances"][label] = row
    return results


def _emit_artifact(deep: bool = False) -> tuple[Path, dict]:
    cpu_count = os.cpu_count() or 1
    packed_vs_dict = collect_packed_vs_dict()
    packed_vs_dict["cpu_count"] = cpu_count
    sections = {
        "cpu_count": cpu_count,
        "packed_vs_dict": packed_vs_dict,
        "kernel_speedup": collect_kernel_speedup(),
        "parallel_scaling": collect_parallel_scaling(),
    }
    if deep:
        sections["deep_exploration"] = collect_deep_exploration()
    else:
        # The 10M-node row takes tens of minutes; a refresh without
        # --deep carries the previously committed row forward instead
        # of silently dropping it from the artifact.
        previous = artifact_path("parallel")
        if previous.exists():
            import json

            stale = json.loads(previous.read_text()).get("deep_exploration")
            if stale is not None:
                sections["deep_exploration"] = stale
    for label, row in sections["parallel_scaling"]["instances"].items():
        assert row["deterministic"], f"{label}: parallel graph diverged"
    path = write_artifact(sections, name="parallel")
    print(f"wrote {path}")
    print(
        "packed over dict baseline: "
        f"{sections['packed_vs_dict']['speedup']}x"
    )
    kernel = sections["kernel_speedup"]
    print(
        f"kernel over scalar ({kernel['protocol']}): "
        f"{kernel['speedup']}x, identical={kernel['identical']}"
    )
    for label, row in sections["parallel_scaling"]["instances"].items():
        parts = [f"{label}: serial {row['serial_s']}s"]
        for workers in (2, 4):
            skipped = row.get(f"workers{workers}_skipped")
            parts.append(
                f"{workers} workers "
                + (f"skipped ({skipped})" if skipped
                   else f"{row[f'workers{workers}_s']}s")
            )
        parts.append(f"(deterministic={row['deterministic']})")
        print(", ".join(parts))
    return path, sections


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--smoke" in argv:
        # CI smoke: one small instance, serial vs 2 workers, no artifact.
        scaling = collect_parallel_scaling(
            instances=[
                ("arbiter/3", make_protocol(ArbiterProcess, 3), None)
            ],
            worker_counts=(0, 2),
            repeat=1,
            force=True,
        )
        row = scaling["instances"]["arbiter/3"]
        assert row["deterministic"], "parallel graph diverged from serial"
        print(f"smoke ok (cpu_count={scaling['cpu_count']}): {row}")
        return 0

    if "--ci-kernel" in argv:
        # Kernel gate: serial scalar vs serial kernel, so it measures
        # real work on any core count — including 1-core runners where
        # the parallel-scaling gate must refuse to run.  Fails if the
        # kernel is not a >= KERNEL_SPEEDUP_FLOOR win or if the two
        # graphs are not byte-identical (the assert inside the
        # collector).  Writes no artifact.
        kernel = collect_kernel_speedup()
        if kernel["speedup"] < KERNEL_SPEEDUP_FLOOR:
            print(
                f"kernel gate failed: {kernel['speedup']}x is below the "
                f"{KERNEL_SPEEDUP_FLOOR}x floor on {kernel['protocol']} "
                f"(scalar {kernel['scalar_serial_s']}s, kernel "
                f"{kernel['kernel_serial_s']}s)"
            )
            return 1
        print(
            f"kernel gate ok: {kernel['protocol']} scalar "
            f"{kernel['scalar_serial_s']}s -> kernel "
            f"{kernel['kernel_serial_s']}s ({kernel['speedup']}x, "
            f"fingerprints identical)"
        )
        return 0

    if "--ci" in argv:
        # CI gate: regenerate the artifact on a real multi-core runner
        # and fail the build if parallel expansion is not a win.  A
        # runner with < 4 cores cannot measure the claim — refuse to
        # produce (hence upload) scaling numbers rather than commit
        # oversubscription noise as if it were data.
        cpu_count = os.cpu_count() or 1
        if cpu_count < 4:
            print(
                f"ci gate skipped: cpu_count={cpu_count} < 4; "
                "parallel-scaling numbers from this runner would be "
                "meaningless and are not generated or uploaded"
            )
            return 0
        _path, sections = _emit_artifact()
        kernel = sections["kernel_speedup"]
        if kernel["speedup"] < KERNEL_SPEEDUP_FLOOR:
            print(
                f"ci gate failed: kernel speedup {kernel['speedup']}x "
                f"is below the {KERNEL_SPEEDUP_FLOOR}x floor"
            )
            return 1
        benor = sections["parallel_scaling"]["instances"]["benor/3@50k"]
        if benor.get("workers4_skipped"):
            print(f"ci gate failed: workers4 skipped on {cpu_count} cores")
            return 1
        if not benor["workers4_s"] < benor["serial_s"]:
            print(
                "ci gate failed: workers=4 "
                f"({benor['workers4_s']}s) is not faster than serial "
                f"({benor['serial_s']}s) on benor/3@50k"
            )
            return 1
        print(
            f"ci gate ok: benor/3@50k serial {benor['serial_s']}s -> "
            f"workers4 {benor['workers4_s']}s"
        )
        return 0

    _emit_artifact(deep="--deep" in argv)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
