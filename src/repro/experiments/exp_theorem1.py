"""E4 — Theorem 1: admissible non-deciding runs against every protocol.

The main event.  For each partially correct zoo protocol and each
requested stage count K, the FLP adversary constructs a run prefix and
the harness reports: the mode the adversary ended in, the prefix length,
how many bivalence-preserving stages were achieved, which process (if
any) plays the single allowed fault, and — the theorem's content — that
*no process ever decided*, re-verified by replaying the certificate.
"""

from __future__ import annotations

from repro.adversary.certificates import AdversaryMode
from repro.adversary.flp import FLPAdversary
from repro.analysis.admissibility import analyze_admissibility
from repro.core.valency import ValencyAnalyzer
from repro.experiments.harness import ExperimentResult, experiment
from repro.experiments.zoo import safe_zoo

__all__ = ["run"]


@experiment("E4", "Theorem 1: admissible runs that never decide")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    stage_counts = (10, 25) if quick else (10, 25, 50, 100)
    rows = []
    for label, protocol in safe_zoo(quick):
        analyzer = ValencyAnalyzer(protocol)
        for stages in stage_counts:
            adversary = FLPAdversary(protocol, analyzer=analyzer)
            certificate = adversary.build_run(stages=stages)
            verified = certificate.verify(protocol)
            faulty = (
                frozenset({certificate.faulty_process})
                if certificate.faulty_process
                else frozenset()
            )
            fairness = analyze_admissibility(
                protocol,
                certificate.initial,
                certificate.schedule,
                faulty=faulty,
                fault_point=certificate.fault_point,
            )
            rows.append(
                {
                    "protocol": label,
                    "stages_requested": stages,
                    "mode": certificate.mode.value,
                    "stages_achieved": len(certificate.stages),
                    "events": certificate.length,
                    "faulty": certificate.faulty_process or "-",
                    "decisions": int(
                        certificate.final.has_decision
                    ),
                    "worst_gap": max(
                        fairness.max_step_gap.values(), default=0
                    ),
                    "oldest_pending": fairness.oldest_pending_age,
                    "verified": verified and fairness.fault_ok,
                }
            )
    return ExperimentResult(
        exp_id="E4",
        title="Theorem 1: admissible runs that never decide",
        rows=tuple(rows),
        notes=(
            "expected: decisions == 0 and verified == True on every row; "
            "events grows with stages_requested (the prefix extends "
            "without bound)",
            "mode 'bivalence-preserving' uses zero faults; mode 'fault' "
            "silences exactly one process — both are admissible, which "
            "is all Theorem 1 needs",
            "fairness debt is bounded: worst_gap = longest stretch a "
            "nonfaulty process went without stepping, oldest_pending = "
            "age of the oldest undelivered live-addressed message at "
            "the end (mail to the designated victim excluded)",
            f"adversary modes observed here: "
            f"{sorted({m.value for m in AdversaryMode})} are the "
            "possible values",
        ),
        seed=seed,
        quick=quick,
    )
